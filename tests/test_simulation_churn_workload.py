"""Unit tests for the churn process and the content/query workload."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, SimulationError
from repro.simulation.churn import ChurnConfig, ChurnProcess
from repro.simulation.network import JoinStrategy
from repro.simulation.workload import ContentCatalog, QueryWorkload, zipf_probabilities


class TestChurn:
    def make_config(self, **overrides) -> ChurnConfig:
        defaults = dict(
            initial_peers=25,
            duration=30.0,
            arrival_rate=2.0,
            mean_session_length=40.0,
            hard_cutoff=6,
            stubs=2,
            sample_interval=10.0,
            seed=7,
        )
        defaults.update(overrides)
        return ChurnConfig(**defaults)

    def test_joins_and_leaves_happen(self):
        report = ChurnProcess(self.make_config()).run()
        assert report.joins > 0
        assert report.leaves >= 0
        assert report.final_peers > 2

    def test_cutoff_never_violated_under_churn(self):
        report = ChurnProcess(self.make_config()).run()
        assert report.cutoff_violations == 0
        assert all(sample.max_degree <= 6 for sample in report.samples)

    def test_samples_taken_at_interval(self):
        report = ChurnProcess(self.make_config(duration=30.0, sample_interval=10.0)).run()
        times = [sample.time for sample in report.samples]
        assert times[0] == pytest.approx(10.0)
        assert times[-1] == pytest.approx(30.0)

    def test_pure_growth_without_departures(self):
        config = self.make_config(mean_session_length=None, duration=20.0)
        report = ChurnProcess(config).run()
        assert report.leaves == 0
        assert report.final_peers >= config.initial_peers

    def test_reproducible(self):
        a = ChurnProcess(self.make_config()).run()
        b = ChurnProcess(self.make_config()).run()
        assert a.joins == b.joins
        assert a.leaves == b.leaves
        assert [s.peers for s in a.samples] == [s.peers for s in b.samples]

    def test_report_serialisation(self):
        report = ChurnProcess(self.make_config(duration=15.0)).run()
        payload = report.as_dict()
        assert payload["joins"] == report.joins
        assert len(payload["samples"]) == len(report.samples)
        assert report.max_degree_over_time() == [s.max_degree for s in report.samples]

    def test_discover_strategy_supported(self):
        config = self.make_config(join_strategy=JoinStrategy.DISCOVER, duration=15.0)
        report = ChurnProcess(config).run()
        assert report.cutoff_violations == 0

    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            self.make_config(initial_peers=1)
        with pytest.raises(ConfigurationError):
            self.make_config(duration=0)
        with pytest.raises(ConfigurationError):
            self.make_config(hard_cutoff=1, stubs=3)
        with pytest.raises(ConfigurationError):
            self.make_config(sample_interval=0)


class TestZipf:
    def test_probabilities_normalised_and_ordered(self):
        p = zipf_probabilities(50, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[-1]

    def test_zero_skew_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert p[0] == pytest.approx(p[-1])

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_probabilities(10, -0.5)


class TestContentCatalog:
    def test_item_names_and_rank_validation(self):
        catalog = ContentCatalog(number_of_items=5)
        assert catalog.item_name(1) == "item-00001"
        assert len(catalog.items()) == 5
        with pytest.raises(ConfigurationError):
            catalog.item_name(6)

    def test_uniform_replication_counts(self):
        catalog = ContentCatalog(number_of_items=10, replicas_per_item=3)
        assert catalog.replica_counts() == [3] * 10

    def test_proportional_replication_favours_popular_items(self):
        catalog = ContentCatalog(
            number_of_items=20, skew=1.2, replication="proportional", replicas_per_item=4
        )
        counts = catalog.replica_counts()
        assert counts[0] > counts[-1]
        assert min(counts) >= 1

    def test_placement_no_duplicate_item_per_peer(self):
        catalog = ContentCatalog(number_of_items=15, replicas_per_item=4)
        placement = catalog.place(list(range(30)), rng=2)
        for items in placement.values():
            assert len(items) == len(set(items))

    def test_placement_on_empty_peer_set_rejected(self):
        with pytest.raises(SimulationError):
            ContentCatalog(number_of_items=3).place([], rng=1)

    def test_invalid_catalog_configuration(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog(replication="broadcast")
        with pytest.raises(ConfigurationError):
            ContentCatalog(replicas_per_item=0)


class TestQueryWorkload:
    def test_events_sorted_and_bounded(self):
        catalog = ContentCatalog(number_of_items=10, skew=0.8)
        workload = QueryWorkload(catalog, query_rate=3.0, duration=8.0, seed=5)
        events = workload.generate(list(range(20)))
        times = [time for time, _, _ in events]
        assert times == sorted(times)
        assert all(0 < time <= 8.0 for time in times)

    def test_sources_and_keywords_valid(self):
        catalog = ContentCatalog(number_of_items=6)
        workload = QueryWorkload(catalog, query_rate=4.0, duration=5.0, seed=6)
        peers = list(range(10))
        for _, source, keyword in workload.generate(peers):
            assert source in peers
            assert keyword in catalog.items()

    def test_reproducible(self):
        catalog = ContentCatalog(number_of_items=6)
        a = QueryWorkload(catalog, query_rate=2.0, duration=5.0, seed=9).generate([1, 2, 3])
        b = QueryWorkload(catalog, query_rate=2.0, duration=5.0, seed=9).generate([1, 2, 3])
        assert a == b

    def test_empty_peer_set_rejected(self):
        catalog = ContentCatalog(number_of_items=6)
        workload = QueryWorkload(catalog, query_rate=2.0, duration=5.0, seed=1)
        with pytest.raises(SimulationError):
            workload.generate([])

    def test_invalid_rate_and_duration(self):
        catalog = ContentCatalog(number_of_items=3)
        with pytest.raises(ConfigurationError):
            QueryWorkload(catalog, query_rate=0.0)
        with pytest.raises(ConfigurationError):
            QueryWorkload(catalog, duration=0.0)
