"""Unit tests for the nonlinear preferential-attachment extension."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.generators.nonlinear_pa import (
    NonlinearPreferentialAttachmentGenerator,
    generate_nonlinear_pa,
)
from repro.generators.pa import generate_pa
from repro.generators.registry import available_generators, create_generator


class TestBasicProperties:
    def test_node_count_and_min_degree(self):
        graph = generate_nonlinear_pa(200, stubs=2, exponent_alpha=1.0, seed=1)
        assert graph.number_of_nodes == 200
        assert graph.min_degree() >= 2

    def test_cutoff_respected(self):
        graph = generate_nonlinear_pa(
            300, stubs=2, exponent_alpha=1.5, hard_cutoff=8, seed=2
        )
        assert graph.max_degree() <= 8

    def test_reproducible(self):
        a = generate_nonlinear_pa(150, stubs=1, exponent_alpha=0.7, seed=5)
        b = generate_nonlinear_pa(150, stubs=1, exponent_alpha=0.7, seed=5)
        assert a == b

    def test_registered_in_registry(self):
        assert "nlpa" in available_generators()
        generator = create_generator(
            "nlpa", number_of_nodes=60, stubs=1, exponent_alpha=1.2, seed=1
        )
        assert generator.generate_graph().number_of_nodes == 60


class TestAttachmentRegimes:
    def test_sublinear_suppresses_hubs(self):
        """alpha < 1 yields a much smaller maximum degree than linear PA."""
        sublinear = generate_nonlinear_pa(800, stubs=1, exponent_alpha=0.3, seed=7)
        linear = generate_pa(800, stubs=1, seed=7)
        assert sublinear.max_degree() < linear.max_degree()

    def test_superlinear_condenses_onto_a_hub(self):
        """alpha > 1 concentrates a large fraction of all links on one node."""
        superlinear = generate_nonlinear_pa(500, stubs=1, exponent_alpha=2.0, seed=9)
        assert superlinear.max_degree() > 0.4 * 500

    def test_alpha_one_similar_to_linear_pa(self):
        nonlinear = generate_nonlinear_pa(600, stubs=2, exponent_alpha=1.0, seed=11)
        linear = generate_pa(600, stubs=2, seed=11)
        assert nonlinear.mean_degree() == pytest.approx(linear.mean_degree(), rel=0.05)
        # Same order of magnitude of hub size.
        assert 0.3 < nonlinear.max_degree() / linear.max_degree() < 3.0

    def test_cutoff_tames_superlinear_condensation(self):
        capped = generate_nonlinear_pa(
            500, stubs=1, exponent_alpha=2.0, hard_cutoff=10, seed=9
        )
        assert capped.max_degree() <= 10


class TestValidation:
    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            NonlinearPreferentialAttachmentGenerator(100, exponent_alpha=-0.5)

    def test_cutoff_not_above_stubs_rejected(self):
        with pytest.raises(ConfigurationError):
            NonlinearPreferentialAttachmentGenerator(100, stubs=3, hard_cutoff=3)

    def test_parameters_dict(self):
        generator = NonlinearPreferentialAttachmentGenerator(
            100, stubs=2, exponent_alpha=0.8, hard_cutoff=12, seed=4
        )
        params = generator.parameters()
        assert params["model"] == "nlpa"
        assert params["exponent_alpha"] == 0.8
