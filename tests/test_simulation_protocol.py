"""Unit tests for the Gnutella-like query protocol."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.simulation.network import P2PNetwork
from repro.simulation.protocol import GnutellaProtocol


def build_network(peers: int = 40, cutoff: int = 6, seed: int = 3) -> P2PNetwork:
    network = P2PNetwork(hard_cutoff=cutoff, stubs=2, rng=seed)
    for _ in range(peers):
        network.join()
    return network


class TestFloodingQueries:
    def test_query_finds_provider(self):
        network = build_network()
        provider = network.online_peers()[-1]
        network.peer(provider).share("song.mp3")
        protocol = GnutellaProtocol(network, policy="fl", rng=1)
        stats = protocol.query(network.online_peers()[0], "song.mp3", ttl=8)
        assert stats.success
        assert provider in stats.providers
        assert stats.first_hit_time is not None

    def test_query_miss(self):
        network = build_network()
        protocol = GnutellaProtocol(network, policy="fl", rng=1)
        stats = protocol.query(network.online_peers()[0], "missing-item", ttl=6)
        assert not stats.success
        assert stats.hit_messages == 0

    def test_flooding_reaches_whole_component(self):
        network = build_network(peers=30)
        protocol = GnutellaProtocol(network, policy="fl", rng=2)
        stats = protocol.query(network.online_peers()[0], "x", ttl=15)
        assert stats.peers_reached == network.peer_count - 1

    def test_peers_reached_counts_distinct_peers_once(self):
        network = build_network(peers=25)
        protocol = GnutellaProtocol(network, policy="fl", rng=3)
        stats = protocol.query(network.online_peers()[0], "x", ttl=20)
        assert stats.peers_reached <= network.peer_count - 1

    def test_single_provider_answers_once(self):
        network = build_network(peers=30)
        provider = network.online_peers()[5]
        network.peer(provider).share("rare")
        protocol = GnutellaProtocol(network, policy="fl", rng=4)
        stats = protocol.query(network.online_peers()[0], "rare", ttl=12)
        assert stats.hit_messages == 1
        assert stats.providers == {provider}


class TestPolicies:
    def test_nf_uses_fewer_messages_than_fl(self):
        network = build_network(peers=60, seed=5)
        target = network.online_peers()[10]
        network.peer(target).share("item")
        source = network.online_peers()[0]

        fl_stats = GnutellaProtocol(network, policy="fl", rng=6).query(source, "item", ttl=5)
        for peer_id in network.online_peers():
            network.peer(peer_id).seen_messages.clear()
        nf_stats = GnutellaProtocol(network, policy="nf", k_min=2, rng=6).query(
            source, "item", ttl=5
        )
        assert nf_stats.query_messages < fl_stats.query_messages

    def test_rw_sends_one_message_per_hop(self):
        network = build_network(peers=30, seed=7)
        protocol = GnutellaProtocol(network, policy="rw", rng=8)
        stats = protocol.query(network.online_peers()[0], "nothing", ttl=10)
        assert stats.query_messages <= 10

    def test_multiple_walkers(self):
        network = build_network(peers=30, seed=9)
        protocol = GnutellaProtocol(network, policy="rw", walkers=4, rng=10)
        stats = protocol.query(network.online_peers()[0], "nothing", ttl=5)
        assert stats.query_messages <= 4 * 5
        assert stats.query_messages > 5  # more than a single walker would send

    def test_policy_override_per_query(self):
        network = build_network(peers=20, seed=11)
        protocol = GnutellaProtocol(network, policy="fl", rng=12)
        stats = protocol.query(network.online_peers()[0], "y", ttl=4, policy="nf")
        assert stats.policy == "nf"

    def test_invalid_policy_rejected(self):
        network = build_network(peers=10, seed=13)
        with pytest.raises(SimulationError):
            GnutellaProtocol(network, policy="dht")
        protocol = GnutellaProtocol(network, policy="fl", rng=14)
        with pytest.raises(SimulationError):
            protocol.query(network.online_peers()[0], "z", ttl=3, policy="chord")

    def test_invalid_ttl_and_walkers(self):
        network = build_network(peers=10, seed=15)
        protocol = GnutellaProtocol(network, rng=16)
        with pytest.raises(SimulationError):
            protocol.query(network.online_peers()[0], "z", ttl=0)
        with pytest.raises(SimulationError):
            GnutellaProtocol(network, walkers=0)


class TestAccounting:
    def test_stats_for_lookup(self):
        network = build_network(peers=15, seed=17)
        protocol = GnutellaProtocol(network, policy="fl", rng=18)
        stats = protocol.query(network.online_peers()[0], "q", ttl=3)
        assert protocol.stats_for(stats.query_id) is stats
        with pytest.raises(SimulationError):
            protocol.stats_for(999_999)

    def test_as_dict_summary(self):
        network = build_network(peers=15, seed=19)
        provider = network.online_peers()[3]
        network.peer(provider).share("doc")
        protocol = GnutellaProtocol(network, policy="fl", rng=20)
        stats = protocol.query(network.online_peers()[0], "doc", ttl=6)
        payload = stats.as_dict()
        assert payload["success"] is True
        assert payload["providers"] == [provider]
        assert payload["total_messages"] if "total_messages" in payload else True
        assert stats.total_messages == stats.query_messages + stats.hit_messages

    def test_peer_counters_incremented(self):
        network = build_network(peers=20, seed=21)
        protocol = GnutellaProtocol(network, policy="fl", rng=22)
        source = network.online_peers()[0]
        protocol.query(source, "anything", ttl=6)
        forwarded = sum(network.peer(p).messages_forwarded for p in network.online_peers())
        received = sum(network.peer(p).messages_received for p in network.online_peers())
        assert forwarded > 0
        assert received > 0


class TestBatchQueries:
    """query_batch: synchronous FIFO semantics over the frozen overlay."""

    def test_batch_finds_provider(self):
        network = build_network(peers=30, seed=23)
        provider = network.online_peers()[-1]
        network.peer(provider).share("song.mp3")
        protocol = GnutellaProtocol(network, policy="fl", rng=24)
        sources = network.online_peers()[:5]
        stats_list = protocol.query_batch(sources, "song.mp3", ttl=12)
        assert len(stats_list) == len(sources)
        for stats in stats_list:
            assert stats.success
            assert stats.providers == {provider}
            assert stats.hit_messages == 1
            # first_hit_time is a hop count here, within the ttl budget.
            assert 1.0 <= stats.first_hit_time <= 12.0
            assert protocol.stats_for(stats.query_id) is stats

    def test_batch_flooding_reaches_whole_component(self):
        network = build_network(peers=25, seed=25)
        protocol = GnutellaProtocol(network, policy="fl", rng=26)
        stats_list = protocol.query_batch(network.online_peers()[:3], "x", ttl=20)
        for stats in stats_list:
            assert stats.peers_reached == network.peer_count - 1

    def test_batch_cross_tier_identical(self):
        from repro.kernels.dispatch import use_kernels

        results = {}
        for tier in ("python", "jit"):
            network = build_network(peers=40, seed=27)
            provider = network.online_peers()[7]
            network.peer(provider).share("rare")
            protocol = GnutellaProtocol(network, policy="nf", k_min=2, rng=28)
            sources = network.online_peers()[:6]
            with use_kernels(tier):
                stats_list = protocol.query_batch(sources, "rare", ttl=6)
            results[tier] = [
                {
                    key: value
                    for key, value in stats.as_dict().items()
                    if key != "query_id"
                }
                for stats in stats_list
            ]
            # The stream position after the batch must match across tiers.
            results[tier].append(protocol.rng.random())
        assert results["python"] == results["jit"]

    def test_batch_random_walk_message_budget(self):
        network = build_network(peers=30, seed=29)
        protocol = GnutellaProtocol(network, policy="rw", walkers=3, rng=30)
        stats_list = protocol.query_batch(network.online_peers()[:4], "x", ttl=5)
        for stats in stats_list:
            # Each of the <= 3 walkers sends at most one message per hop.
            assert stats.query_messages <= 3 * 5

    def test_batch_validates_inputs(self):
        network = build_network(peers=10, seed=31)
        protocol = GnutellaProtocol(network, rng=32)
        source = network.online_peers()[0]
        with pytest.raises(SimulationError):
            protocol.query_batch([source], "x", ttl=0)
        with pytest.raises(SimulationError):
            protocol.query_batch([source], "x", policy="bogus")
        with pytest.raises(SimulationError):
            protocol.query_batch([999_999], "x")

    def test_batch_leaves_peer_counters_untouched(self):
        network = build_network(peers=20, seed=33)
        protocol = GnutellaProtocol(network, policy="fl", rng=34)
        protocol.query_batch(network.online_peers()[:3], "x", ttl=6)
        assert all(
            network.peer(p).messages_forwarded == 0
            for p in network.online_peers()
        )

    def test_batch_reference_function_matches_method(self):
        import numpy as np

        from repro.core.rng import RandomSource
        from repro.simulation.protocol import batch_query_reference

        network = build_network(peers=20, seed=35)
        provider = network.online_peers()[4]
        network.peer(provider).share("doc")
        frozen = network.graph.freeze()
        provider_mask = np.zeros(network.peer_count, dtype=np.bool_)
        provider_mask[frozen._row_of(provider)] = True
        sources = network.online_peers()[:3]
        rows = [frozen._row_of(s) for s in sources]

        protocol = GnutellaProtocol(network, policy="fl", rng=36)
        stats_list = protocol.query_batch(sources, "doc", ttl=8)
        reached, query_messages, hit_messages, first_hits, providers = (
            batch_query_reference(
                frozen, rows, 8, "fl", protocol._branching(), 1, provider_mask,
                RandomSource(seed=36),
            )
        )
        for index, stats in enumerate(stats_list):
            assert stats.peers_reached == reached[index]
            assert stats.query_messages == query_messages[index]
            assert stats.hit_messages == hit_messages[index]
            assert stats.providers == {
                frozen._id_of(row) for row in providers[index]
            }
