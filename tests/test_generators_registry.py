"""Unit tests for the generator registry."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.generators.base import TopologyGenerator
from repro.generators.registry import (
    GENERATORS,
    available_generators,
    create_generator,
    register_generator,
)


class TestRegistry:
    def test_all_four_paper_models_registered(self):
        assert set(available_generators()) >= {"pa", "cm", "hapa", "dapa"}

    def test_create_generator_pa(self):
        generator = create_generator("pa", number_of_nodes=50, stubs=2, seed=1)
        assert generator.model_name == "pa"
        assert generator.generate_graph().number_of_nodes == 50

    def test_create_generator_case_insensitive(self):
        generator = create_generator("CM", number_of_nodes=50, exponent=2.5, seed=1)
        assert generator.model_name == "cm"

    def test_unknown_generator(self):
        with pytest.raises(ConfigurationError):
            create_generator("chord", number_of_nodes=10)

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_generator("pa", GENERATORS["pa"])

    def test_register_non_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            register_generator("bogus-model", dict)  # type: ignore[arg-type]

    def test_register_and_use_custom_generator(self):
        class TinyGenerator(GENERATORS["pa"]):  # type: ignore[misc]
            model_name = "tiny"

        try:
            register_generator("tiny", TinyGenerator)
            generator = create_generator("tiny", number_of_nodes=20, stubs=1, seed=1)
            assert generator.generate_graph().number_of_nodes == 20
        finally:
            GENERATORS.pop("tiny", None)

    def test_registry_classes_are_topology_generators(self):
        assert all(issubclass(cls, TopologyGenerator) for cls in GENERATORS.values())
