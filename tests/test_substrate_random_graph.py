"""Unit tests for the Erdős–Rényi substrate."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.substrate.random_graph import ErdosRenyiNetwork, generate_erdos_renyi


class TestErdosRenyi:
    def test_node_count(self):
        graph = generate_erdos_renyi(200, target_mean_degree=5.0, seed=1)
        assert graph.number_of_nodes == 200

    def test_mean_degree_close_to_target(self):
        graph = generate_erdos_renyi(2000, target_mean_degree=8.0, seed=2)
        assert graph.mean_degree() == pytest.approx(8.0, rel=0.15)

    def test_reproducible(self):
        a = generate_erdos_renyi(300, edge_probability=0.02, seed=5)
        b = generate_erdos_renyi(300, edge_probability=0.02, seed=5)
        assert a == b

    def test_zero_probability_gives_empty_graph(self):
        graph = generate_erdos_renyi(100, edge_probability=0.0, seed=1)
        assert graph.number_of_edges == 0

    def test_probability_one_gives_complete_graph(self):
        graph = generate_erdos_renyi(30, edge_probability=1.0, seed=1)
        assert graph.number_of_edges == 30 * 29 // 2

    def test_effective_probability_from_mean_degree(self):
        builder = ErdosRenyiNetwork(101, target_mean_degree=10.0)
        assert builder.effective_probability() == pytest.approx(0.1)

    def test_requires_probability_or_mean_degree(self):
        with pytest.raises(ConfigurationError):
            ErdosRenyiNetwork(100)

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            ErdosRenyiNetwork(100, edge_probability=1.5)

    def test_poisson_like_degree_distribution_has_no_heavy_tail(self):
        graph = generate_erdos_renyi(2000, target_mean_degree=6.0, seed=3)
        assert graph.max_degree() < 6 * 5  # far below a scale-free hub

    def test_parameters(self):
        builder = ErdosRenyiNetwork(50, target_mean_degree=4.0, seed=9)
        params = builder.parameters()
        assert params["substrate"] == "erdos_renyi"
        assert params["effective_probability"] == pytest.approx(4.0 / 49)
