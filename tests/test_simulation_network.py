"""Unit tests for the live P2P overlay network."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.generators.pa import generate_pa
from repro.simulation.messages import Ping
from repro.simulation.network import JoinStrategy, LatencyModel, P2PNetwork


def grow(network: P2PNetwork, count: int):
    return [network.join() for _ in range(count)]


class TestJoin:
    def test_first_peer_has_no_links(self):
        network = P2PNetwork(rng=1)
        first = network.join()
        assert network.degree(first) == 0
        assert network.peer_count == 1

    def test_join_respects_stubs(self):
        network = P2PNetwork(stubs=2, rng=2)
        grow(network, 20)
        # Every peer that joined after the first two has at least 2 links.
        graph = network.overlay_graph()
        late_joiners = network.online_peers()[3:]
        assert all(graph.degree(peer) >= 2 for peer in late_joiners)

    def test_hard_cutoff_never_exceeded(self):
        for strategy in JoinStrategy:
            network = P2PNetwork(hard_cutoff=4, stubs=2, join_strategy=strategy, rng=3)
            grow(network, 60)
            assert network.overlay_graph().max_degree() <= 4, strategy

    def test_duplicate_peer_id_rejected(self):
        network = P2PNetwork(rng=4)
        network.join(peer_id=7)
        with pytest.raises(SimulationError):
            network.join(peer_id=7)

    def test_join_with_shared_items(self):
        network = P2PNetwork(rng=5)
        peer_id = network.join(shared_items=["a", "b"])
        assert network.peer(peer_id).has_item("a")

    def test_per_peer_cutoff_override(self):
        network = P2PNetwork(hard_cutoff=10, stubs=1, rng=6)
        grow(network, 5)
        special = network.join(hard_cutoff=2)
        assert network.peer(special).neighbor_table.capacity == 2

    def test_strategy_override_per_join(self):
        network = P2PNetwork(stubs=1, join_strategy=JoinStrategy.RANDOM, rng=7)
        grow(network, 10)
        peer_id = network.join(strategy="preferential")
        assert network.degree(peer_id) >= 1


class TestLinksAndLeave:
    def test_connect_and_disconnect(self):
        network = P2PNetwork(rng=8)
        a, b = network.join(), network.join()
        assert network.graph.has_edge(a, b) or network.connect(a, b)
        assert network.disconnect(a, b)
        assert not network.graph.has_edge(a, b)
        assert not network.disconnect(a, b)

    def test_connect_refuses_when_table_full(self):
        network = P2PNetwork(hard_cutoff=1, stubs=1, rng=9)
        a, b, c = network.join(), network.join(), network.join()
        # a-b consumed both tables (whichever join linked them); a third link
        # onto a full table must fail.
        full_pairs = [(a, c), (b, c)]
        results = [network.connect(u, v) for u, v in full_pairs]
        assert results.count(True) <= 1

    def test_leave_removes_peer_and_links(self):
        network = P2PNetwork(stubs=2, rng=10)
        ids = grow(network, 10)
        victim = ids[4]
        network.leave(victim, rewire=False)
        assert not network.has_peer(victim)
        assert victim not in network.overlay_graph()
        for peer_id in network.online_peers():
            assert victim not in network.peer(peer_id).neighbors()

    def test_leave_with_rewiring_creates_replacement_links(self):
        network = P2PNetwork(stubs=3, rng=11)
        grow(network, 30)
        hub = max(network.online_peers(), key=network.degree)
        created = network.leave(hub, rewire=True)
        assert isinstance(created, list)
        graph = network.overlay_graph()
        for u, v in created:
            assert graph.has_edge(u, v)

    def test_leave_unknown_peer_raises(self):
        network = P2PNetwork(rng=12)
        network.join()
        with pytest.raises(SimulationError):
            network.leave(999)


class TestMessaging:
    def test_send_delivers_via_event_queue(self):
        network = P2PNetwork(rng=13)
        a, b = network.join(), network.join()
        received = []
        network.set_message_handler(
            lambda net, sender, recipient, message: received.append((sender, recipient))
        )
        network.send(a, b, Ping(message_id=1, origin=a, ttl=1))
        assert received == []  # not delivered until the event queue runs
        network.run()
        assert received == [(a, b)]
        assert network.messages_delivered == 1

    def test_send_to_departed_peer_is_dropped(self):
        network = P2PNetwork(rng=14)
        a, b = network.join(), network.join()
        network.leave(b, rewire=False)
        network.send(a, b, Ping(message_id=2, origin=a, ttl=1))
        network.run()
        assert network.messages_delivered == 0

    def test_latency_model_bounds(self):
        model = LatencyModel(minimum=0.01, maximum=0.02)
        from repro.core.rng import RandomSource

        rng = RandomSource(seed=1)
        for _ in range(50):
            assert 0.01 <= model.sample(rng) <= 0.02

    def test_degenerate_latency_model(self):
        from repro.core.rng import RandomSource

        model = LatencyModel(minimum=0.05, maximum=0.05)
        assert model.sample(RandomSource(seed=1)) == 0.05


class TestFromGraph:
    def test_wraps_generated_topology(self):
        graph = generate_pa(100, stubs=2, hard_cutoff=10, seed=15)
        network = P2PNetwork.from_graph(graph, hard_cutoff=10, rng=16)
        assert network.peer_count == 100
        assert network.overlay_graph() == graph

    def test_neighbor_tables_match_graph(self):
        graph = generate_pa(50, stubs=2, hard_cutoff=8, seed=17)
        network = P2PNetwork.from_graph(graph, hard_cutoff=8, rng=18)
        for node in graph.nodes():
            assert sorted(network.peer(node).neighbors()) == sorted(graph.neighbors(node))

    def test_validation_of_constructor_arguments(self):
        with pytest.raises(SimulationError):
            P2PNetwork(stubs=0)
        with pytest.raises(SimulationError):
            P2PNetwork(hard_cutoff=1, stubs=2)
        with pytest.raises(SimulationError):
            P2PNetwork(horizon=0)
