"""Unit tests for power-law exponent estimation."""

from __future__ import annotations

import pytest

from repro.analysis.powerlaw import (
    PowerLawFit,
    fit_power_law,
    fit_power_law_mle,
    fit_power_law_regression,
)
from repro.core.errors import AnalysisError
from repro.generators.degree_sequence import power_law_degree_sequence
from repro.generators.pa import generate_pa


def synthetic_power_law(exponent: float, size: int = 20_000, seed: int = 0):
    """Sample a discrete power-law degree sequence with a known exponent."""
    return power_law_degree_sequence(
        size, exponent, min_degree=1, max_degree=1000, rng=seed
    )


class TestMLE:
    def test_recovers_known_exponent(self):
        for true_gamma in (2.2, 2.8):
            sample = synthetic_power_law(true_gamma)
            fit = fit_power_law_mle(sample, k_min=1)
            assert fit.exponent == pytest.approx(true_gamma, abs=0.15)

    def test_fit_range_recorded(self):
        sample = synthetic_power_law(2.5, size=5000)
        fit = fit_power_law_mle(sample, k_min=2, k_max=100)
        assert fit.k_min == 2
        assert fit.k_max == 100
        assert fit.method == "mle"

    def test_goodness_is_small_for_true_power_law(self):
        fit = fit_power_law_mle(synthetic_power_law(2.5), k_min=1)
        assert fit.goodness < 0.1

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            fit_power_law_mle([5], k_min=1)

    def test_pa_graph_exponent_in_plausible_range(self, pa_graph_small):
        fit = fit_power_law_mle(pa_graph_small, k_min=2)
        assert 1.8 < fit.exponent < 3.6


class TestRegression:
    def test_recovers_known_exponent(self):
        sample = synthetic_power_law(2.5)
        fit = fit_power_law_regression(sample, k_min=1, k_max=50)
        assert fit.exponent == pytest.approx(2.5, abs=0.4)

    def test_r_squared_high_for_power_law(self):
        fit = fit_power_law_regression(synthetic_power_law(2.3), k_min=1, k_max=50)
        assert fit.goodness > 0.9

    def test_needs_two_distinct_degrees(self):
        with pytest.raises(AnalysisError):
            fit_power_law_regression([4, 4, 4, 4])

    def test_as_dict(self):
        fit = PowerLawFit(2.5, 1, 100, "mle", 0.02, 500)
        payload = fit.as_dict()
        assert payload["exponent"] == 2.5
        assert payload["method"] == "mle"


class TestCutoffSpikeHandling:
    def test_spike_exclusion_shrinks_fit_range(self):
        degrees = [1] * 500 + [2] * 120 + [3] * 55 + [4] * 30 + [10] * 80
        trimmed = fit_power_law(degrees, method="regression", exclude_cutoff_spike=True)
        full = fit_power_law(degrees, method="regression", exclude_cutoff_spike=False)
        assert trimmed.k_max < full.k_max

    def test_no_spike_leaves_range_untouched(self):
        sample = synthetic_power_law(2.5, size=5000)
        trimmed = fit_power_law(sample, exclude_cutoff_spike=True)
        full = fit_power_law(sample, exclude_cutoff_spike=False)
        assert trimmed.k_max == full.k_max

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            fit_power_law([1, 2, 3], method="bayes")

    def test_paper_trend_gamma_decreases_with_cutoff(self):
        """Fig. 1(c): the fitted exponent is lower for harder cutoffs."""
        hard = generate_pa(3000, stubs=2, hard_cutoff=8, seed=3)
        soft = generate_pa(3000, stubs=2, hard_cutoff=60, seed=3)
        fit_hard = fit_power_law(hard, k_min=2, exclude_cutoff_spike=True)
        fit_soft = fit_power_law(soft, k_min=2, exclude_cutoff_spike=True)
        assert fit_hard.exponent < fit_soft.exponent + 0.1
