"""Unit tests for the random-walk search algorithm."""

from __future__ import annotations

import pytest

from repro.core.graph import Graph
from repro.search.random_walk import RandomWalkSearch, random_walk


class TestSingleWalker:
    def test_walk_on_path_reaches_end(self, path_graph):
        """A non-backtracking walk on a path has only one way to go."""
        result = random_walk(path_graph, 0, ttl=4, rng=1)
        assert result.hits == 4
        assert result.visited == {0, 1, 2, 3, 4}

    def test_messages_equal_steps_taken(self, complete_graph):
        result = random_walk(complete_graph, 0, ttl=7, rng=2)
        assert result.messages == 7

    def test_hits_bounded_by_steps(self, pa_graph_small):
        result = random_walk(pa_graph_small, 0, ttl=30, rng=3)
        assert result.hits <= 30

    def test_dead_end_stops_walk(self):
        graph = Graph.from_edges(2, [(0, 1)])
        result = random_walk(graph, 0, ttl=10, rng=1)
        # After reaching node 1 the only neighbor is the previous hop.
        assert result.hits == 1
        assert result.messages == 1

    def test_non_backtracking_on_triangle_cycles(self):
        triangle = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        result = random_walk(triangle, 0, ttl=9, rng=4)
        assert result.hits == 2  # visits both other corners, never stalls
        assert result.messages == 9

    def test_backtracking_allowed_variant(self):
        graph = Graph.from_edges(2, [(0, 1)])
        result = random_walk(graph, 0, ttl=5, rng=1, allow_backtracking=True)
        assert result.messages == 5  # bounces back and forth

    def test_reproducible(self, pa_graph_cutoff):
        a = random_walk(pa_graph_cutoff, 2, ttl=20, rng=9)
        b = random_walk(pa_graph_cutoff, 2, ttl=20, rng=9)
        assert a.hits_per_ttl == b.hits_per_ttl

    def test_ttl_zero(self, path_graph):
        result = random_walk(path_graph, 0, ttl=0, rng=1)
        assert result.hits == 0
        assert result.messages == 0


class TestMultipleWalkers:
    def test_walker_count_scales_messages(self, complete_graph):
        result = random_walk(complete_graph, 0, ttl=5, walkers=4, rng=5)
        assert result.messages == 20

    def test_more_walkers_more_coverage(self, pa_graph_small):
        single = random_walk(pa_graph_small, 0, ttl=15, walkers=1, rng=6)
        multiple = random_walk(pa_graph_small, 0, ttl=15, walkers=8, rng=6)
        assert multiple.hits >= single.hits

    def test_invalid_walker_count(self):
        with pytest.raises(ValueError):
            RandomWalkSearch(walkers=0)


class TestTargets:
    def test_target_found_on_path(self, path_graph):
        result = random_walk(path_graph, 0, ttl=10, rng=1, target=4)
        assert result.found_at == 4

    def test_target_in_other_component_never_found(self, two_component_graph):
        result = random_walk(two_component_graph, 0, ttl=50, rng=2, target=5)
        assert result.found_at is None

    def test_isolated_source(self):
        graph = Graph(2)
        result = random_walk(graph, 0, ttl=5, rng=1)
        assert result.hits == 0
        assert result.messages == 0
