"""Unit tests for the degree-assortativity coefficient."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.assortativity import degree_assortativity
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.generators.cm import generate_cm
from repro.generators.pa import generate_pa


class TestDegreeAssortativity:
    def test_star_is_perfectly_disassortative(self, star_graph):
        assert degree_assortativity(star_graph) == pytest.approx(-1.0)

    def test_matches_networkx(self):
        graph = generate_pa(400, stubs=2, hard_cutoff=20, seed=3)
        ours = degree_assortativity(graph)
        reference = nx.degree_assortativity_coefficient(graph.to_networkx())
        assert ours == pytest.approx(reference, abs=1e-6)

    def test_bounded_in_minus_one_one(self):
        for seed in range(3):
            graph = generate_pa(300, stubs=2, seed=seed)
            assert -1.0 <= degree_assortativity(graph) <= 1.0

    def test_pa_is_not_strongly_assortative(self):
        """Growth models are neutral-to-disassortative, never strongly assortative."""
        graph = generate_pa(1000, stubs=2, seed=5)
        assert degree_assortativity(graph) < 0.2

    def test_cm_is_nearly_uncorrelated(self):
        """The configuration model generates uncorrelated networks (paper §III-C)."""
        graph = generate_cm(3000, exponent=2.8, min_degree=2, hard_cutoff=30, seed=7)
        assert abs(degree_assortativity(graph)) < 0.15

    def test_edgeless_graph_rejected(self):
        with pytest.raises(AnalysisError):
            degree_assortativity(Graph(5))

    def test_regular_graph_undefined(self, complete_graph):
        with pytest.raises(AnalysisError):
            degree_assortativity(complete_graph)
