"""Tests for the repro-lint static checker (`repro.staticcheck`).

The fixture corpus under ``tests/fixtures/lint/`` holds one known-bad and
one known-good file per rule family; these tests pin (a) that every
registered rule is proven by at least one bad fixture, (b) that the good
fixtures stay clean, (c) the suppression grammar and its meta findings,
(d) the JSON report shape, and (e) the CLI exit-code contract.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.staticcheck import (
    META_CODES,
    LintReport,
    all_rules,
    lint_paths,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(__file__).parent.parent / "src"

RULE_CODES = sorted(rule.code for rule in all_rules())


def codes_in(path: Path, active_only: bool = True) -> list:
    report = lint_paths([path])
    return sorted(
        finding.code
        for finding in report.findings
        if not (active_only and finding.suppressed)
    )


class TestRuleRegistry:
    def test_twelve_rules_across_four_families(self):
        assert len(RULE_CODES) == 12
        families = {code[:4] for code in RULE_CODES}
        assert families == {"RPL1", "RPL2", "RPL3", "RPL4"}

    def test_every_rule_has_code_name_invariant(self):
        for rule in all_rules():
            assert rule.code.startswith("RPL") and len(rule.code) == 6
            assert rule.name
            assert rule.invariant

    def test_every_rule_proven_by_a_bad_fixture(self):
        """Acceptance criterion: each rule fires on the known-bad corpus."""
        report = lint_paths([FIXTURES])
        fired = {finding.code for finding in report.findings}
        for code in RULE_CODES:
            assert code in fired, f"{code} has no triggering bad fixture"

    def test_every_meta_code_proven_by_a_fixture(self):
        report = lint_paths([FIXTURES])
        fired = {finding.code for finding in report.findings}
        for code in META_CODES:
            assert code in fired, f"{code} has no triggering fixture"


class TestDrawOrderRules:
    def test_pf_set_order_bug_is_flagged(self):
        """The seeded PR-2 reconstruction must always trip RPL101."""
        codes = codes_in(FIXTURES / "search" / "bad_pf_set_order.py")
        assert codes == ["RPL101", "RPL101"]

    def test_pf_insertion_order_fix_is_clean(self):
        assert codes_in(FIXTURES / "search" / "good_pf_insertion_order.py") == []

    def test_dict_iteration_flagged(self):
        codes = codes_in(FIXTURES / "generators" / "bad_dict_iteration.py")
        assert codes == ["RPL102", "RPL102"]

    def test_ambient_randomness_flagged(self):
        codes = codes_in(FIXTURES / "generators" / "bad_ambient_random.py")
        assert codes == ["RPL103", "RPL103", "RPL103"]

    def test_explicit_rng_is_clean(self):
        assert codes_in(FIXTURES / "generators" / "good_explicit_rng.py") == []

    def test_draw_order_rules_are_scoped_by_path(self, tmp_path):
        """The same set-iterating source is clean outside the RNG scope."""
        source = (FIXTURES / "search" / "bad_pf_set_order.py").read_text()
        unscoped = tmp_path / "helper.py"
        unscoped.write_text(source)
        assert codes_in(unscoped) == []
        scoped_dir = tmp_path / "search"
        scoped_dir.mkdir()
        scoped = scoped_dir / "helper.py"
        scoped.write_text(source)
        assert codes_in(scoped) == ["RPL101", "RPL101"]


class TestKernelPurityRules:
    def test_impure_kernel_trips_every_purity_rule(self):
        codes = set(codes_in(FIXTURES / "kernels_purity_bad.py"))
        assert codes == {"RPL201", "RPL202", "RPL203", "RPL204", "RPL205"}

    def test_pure_kernel_is_clean(self):
        assert codes_in(FIXTURES / "kernels_purity_good.py") == []

    def test_purity_rules_apply_regardless_of_path(self, tmp_path):
        """maybe_njit purity is not scoped: kernels can live anywhere."""
        source = (FIXTURES / "kernels_purity_bad.py").read_text()
        anywhere = tmp_path / "somewhere.py"
        anywhere.write_text(source)
        assert "RPL201" in codes_in(anywhere)


class TestPoolBoundaryRules:
    def test_unpicklable_members_and_lambda_tasks_flagged(self):
        codes = codes_in(FIXTURES / "engine" / "bad_boundary.py")
        assert codes.count("RPL301") == 5
        assert codes.count("RPL302") == 2

    def test_clean_boundary_passes(self):
        """Non-dataclass engine classes may hold locks — only carriers count."""
        assert codes_in(FIXTURES / "engine" / "good_boundary.py") == []


class TestAmbientDisciplineRules:
    def test_bare_span_and_stack_internals_flagged(self):
        codes = codes_in(FIXTURES / "telemetry_bad_ambient.py")
        assert codes == ["RPL401", "RPL401", "RPL402", "RPL402"]

    def test_context_managed_spans_pass(self):
        assert codes_in(FIXTURES / "telemetry_good_ambient.py") == []


class TestSuppressions:
    def test_justified_suppression_silences_the_finding(self):
        report = lint_paths([FIXTURES / "search" / "suppress_valid.py"])
        assert report.active == []
        (finding,) = report.suppressed
        assert finding.code == "RPL101"
        assert "draw-free" in finding.justification
        assert report.exit_code == 0

    def test_missing_justification_is_rejected(self):
        codes = codes_in(FIXTURES / "search" / "suppress_missing_reason.py")
        assert codes == ["RPL002", "RPL101"]

    def test_unknown_code_is_rejected(self):
        codes = codes_in(FIXTURES / "search" / "suppress_unknown_code.py")
        assert codes == ["RPL003", "RPL101"]

    def test_unused_suppression_is_flagged(self):
        codes = codes_in(FIXTURES / "search" / "suppress_unused.py")
        assert codes == ["RPL004"]

    def test_malformed_directives_are_flagged_and_suppress_nothing(self):
        codes = codes_in(FIXTURES / "search" / "suppress_malformed.py")
        assert codes == ["RPL001", "RPL001", "RPL101"]

    def test_meta_codes_cannot_be_suppressed(self, tmp_path):
        scoped_dir = tmp_path / "search"
        scoped_dir.mkdir()
        path = scoped_dir / "meta.py"
        path.write_text(
            "for n in graph.neighbor_set(0):"
            "  # repro-lint: disable=RPL004(nope)\n"
            "    pass\n"
        )
        assert "RPL001" in codes_in(path)

    def test_directives_in_docstrings_are_ignored(self, tmp_path):
        path = tmp_path / "docs.py"
        path.write_text('"""Example: # repro-lint: disable=RPL101(x)"""\n')
        assert codes_in(path) == []

    def test_justification_may_contain_commas_and_parens(self, tmp_path):
        scoped_dir = tmp_path / "search"
        scoped_dir.mkdir()
        path = scoped_dir / "commas.py"
        path.write_text(
            "for n in graph.neighbor_set(0):"
            "  # repro-lint: disable=RPL101(order-free (proved), see PR 7)\n"
            "    pass\n"
        )
        report = lint_paths([path])
        assert report.active == []
        (finding,) = report.suppressed
        assert finding.justification == "order-free (proved), see PR 7"


class TestSelectIgnore:
    def test_select_narrows_to_a_family(self):
        report = lint_paths([FIXTURES], select=["RPL2"])
        codes = {finding.code for finding in report.findings}
        assert codes == {"RPL201", "RPL202", "RPL203", "RPL204", "RPL205"}

    def test_ignore_drops_a_single_code(self):
        report = lint_paths([FIXTURES], ignore=["RPL101"])
        codes = {finding.code for finding in report.findings}
        assert "RPL101" not in codes
        assert "RPL102" in codes


class TestReports:
    def test_json_report_shape(self):
        report = lint_paths([FIXTURES / "search" / "suppress_valid.py"])
        payload = render_json(report)
        assert payload == json.loads(json.dumps(payload))  # JSON-serialisable
        assert payload["schema"] == 1
        assert payload["files_checked"] == 1
        assert payload["errors"] == []
        assert payload["exit_code"] == 0
        assert payload["findings"] == []
        (suppressed,) = payload["suppressed"]
        assert suppressed["code"] == "RPL101"
        assert suppressed["justification"]
        assert suppressed["line"] == 6

    def test_json_findings_carry_locations(self):
        report = lint_paths([FIXTURES / "search" / "bad_pf_set_order.py"])
        payload = render_json(report)
        assert [f["line"] for f in payload["findings"]] == [17, 26]
        for finding in payload["findings"]:
            assert finding["code"] == "RPL101"
            assert finding["path"].endswith("bad_pf_set_order.py")
            assert finding["message"]

    def test_text_report_format(self, capsys):
        report = lint_paths([FIXTURES / "search" / "bad_pf_set_order.py"])
        import io

        stream = io.StringIO()
        render_text(report, stream)
        text = stream.getvalue()
        assert "bad_pf_set_order.py:17:" in text
        assert "RPL101" in text
        assert "2 findings" in text

    def test_findings_sorted_by_position(self):
        report = lint_paths([FIXTURES / "kernels_purity_bad.py"])
        positions = [(f.line, f.col, f.code) for f in report.findings]
        assert positions == sorted(positions)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert report.exit_code == 0

    def test_findings_exit_one(self):
        assert lint_paths([FIXTURES]).exit_code == 1

    def test_bad_path_exits_two(self, tmp_path):
        report = lint_paths([tmp_path / "does-not-exist"])
        assert report.exit_code == 2
        assert report.errors

    def test_syntax_error_exits_two(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        report = lint_paths([tmp_path])
        assert report.exit_code == 2
        assert "broken.py" in report.errors[0]


class TestCli:
    def test_lint_clean_file_returns_zero(self, capsys):
        good = FIXTURES / "search" / "good_pf_insertion_order.py"
        assert main(["lint", str(good)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_bad_file_returns_one(self, capsys):
        bad = FIXTURES / "search" / "bad_pf_set_order.py"
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPL101" in out

    def test_lint_missing_path_returns_two(self, capsys):
        assert main(["lint", "no/such/path"]) == 2

    def test_lint_json_output(self, capsys):
        bad = FIXTURES / "generators" / "bad_ambient_random.py"
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["code"] for f in payload["findings"]} == {"RPL103"}

    def test_lint_select_filters_family(self, capsys):
        assert main(["lint", str(FIXTURES), "--select", "RPL4", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["code"] for f in payload["findings"]} == {"RPL401", "RPL402"}

    def test_lint_ignore_can_silence_everything(self, capsys):
        bad = FIXTURES / "telemetry_bad_ambient.py"
        code = main(["lint", str(bad), "--ignore", "RPL401", "--ignore", "RPL402"])
        assert code == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CODES:
            assert code in out

    def test_show_suppressed_includes_justifications(self, capsys):
        path = FIXTURES / "search" / "suppress_valid.py"
        assert main(["lint", str(path), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out
        assert "draw-free" in out


class TestLiveTree:
    def test_src_lints_clean(self):
        """The shipped tree must pass its own linter — the CI gate."""
        report = lint_paths([SRC])
        assert report.errors == []
        assert [f.location() for f in report.active] == []
        assert report.exit_code == 0

    def test_src_suppressions_all_carry_justifications(self):
        """Acceptance criterion: every in-tree suppression is justified."""
        report = lint_paths([SRC])
        assert report.suppressed, "expected the documented in-tree suppressions"
        for finding in report.suppressed:
            assert finding.justification and len(finding.justification) > 10, (
                f"{finding.location()} suppression lacks a real justification"
            )


def test_report_is_a_plain_dataclass():
    report = LintReport(findings=[], files_checked=0, errors=[])
    assert report.exit_code == 0
    assert report.active == []
    assert report.suppressed == []
