"""Tests for result-store durability and garbage collection.

The load-bearing guarantees:

* :meth:`ResultStore.put` is atomic — artifacts land via temp-file +
  ``os.replace``, so a crashed writer never leaves a torn ``result.json``
  and a half-written entry is invisible to readers;
* :meth:`ResultStore.gc` evicts least-recently-written entries by byte
  budget and/or age, records the reclaimed bytes in ``last-gc.json``,
  and ``repro cache stats`` / ``repro cache gc`` surface it on the CLI.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main
from repro.engine.store import ResultStore
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale


def _result(tag: str = "a") -> ExperimentResult:
    return ExperimentResult(
        experiment_id=f"fake-{tag}",
        title="fake experiment",
        series=[Series(label=tag, x=[1, 2], y=[0.5, 1.5], metadata={"m": 1})],
        parameters={"name": "smoke"},
        notes="gc me",
    )


def _fill(store: ResultStore, count: int, scale: ExperimentScale) -> None:
    for index in range(count):
        store.put(f"fake-{index}", scale, _result(str(index)))


class TestAtomicPut:
    def test_put_leaves_no_temp_files(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        directory = store.put("fake", smoke_scale, _result())
        names = {p.name for p in directory.iterdir()}
        assert names == {"result.json", "result.csv", "meta.json"}
        assert not any(".tmp-" in name for name in names)

    def test_interrupted_put_leaves_entry_invisible(self, tmp_path, smoke_scale):
        """A writer that dies before the final rename leaves no torn entry."""
        store = ResultStore(tmp_path)
        result = _result()

        # Simulate the crash by failing the last artifact's serialization:
        # the temp files written so far must be cleaned up and the entry
        # must stay a miss (result.json is the completeness marker).
        class Exploding(ExperimentResult):
            def save_json(self, path):
                raise OSError("disk died")

        exploding = Exploding(
            experiment_id=result.experiment_id,
            title=result.title,
            series=result.series,
            parameters=result.parameters,
            notes=result.notes,
        )
        with pytest.raises(OSError):
            store.put("fake", smoke_scale, exploding)
        assert store.get("fake", smoke_scale) is None
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file() and ".tmp-" in p.name
        ]
        assert leftovers == []

    def test_put_overwrites_completely(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        store.put("fake", smoke_scale, _result("first"))
        store.put("fake", smoke_scale, _result("second"))
        loaded = store.get("fake", smoke_scale)
        assert loaded is not None
        assert loaded.series[0].label == "second"


class TestGC:
    def test_older_than_evicts_only_stale_entries(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        _fill(store, 3, smoke_scale)
        # Age two entries by backdating their result.json mtime.
        directories = sorted(p.parent for p in tmp_path.glob("*/*/meta.json"))
        old = time.time() - 3600
        for directory in directories[:2]:
            os.utime(directory / "result.json", (old, old))
        summary = store.gc(older_than_seconds=600)
        assert summary["removed_entries"] == 2
        assert summary["remaining_entries"] == 1
        assert summary["reclaimed_bytes"] > 0
        assert store.disk_stats()["entries"] == 1

    def test_max_bytes_keeps_newest(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        _fill(store, 4, smoke_scale)
        entries = sorted(
            (p.parent for p in tmp_path.glob("*/*/meta.json")),
            key=lambda d: (d / "result.json").stat().st_mtime,
        )
        # Make mtimes strictly increasing so LRU order is deterministic.
        base = time.time() - 1000
        for index, directory in enumerate(entries):
            stamp = base + index
            os.utime(directory / "result.json", (stamp, stamp))
        newest = entries[-1]
        one_entry_bytes = sum(
            f.stat().st_size for f in newest.iterdir() if f.is_file()
        )
        summary = store.gc(max_bytes=one_entry_bytes)
        assert summary["removed_entries"] == 3
        assert summary["remaining_entries"] == 1
        assert newest.exists()  # the newest entry survived

    def test_dry_run_deletes_nothing(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        _fill(store, 2, smoke_scale)
        summary = store.gc(max_bytes=0, dry_run=True)
        assert summary["removed_entries"] == 2
        assert store.disk_stats()["entries"] == 2
        assert store.last_gc_stats() is None  # no record persisted

    def test_gc_summary_is_persisted_and_readable(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        _fill(store, 2, smoke_scale)
        summary = store.gc(max_bytes=0)
        persisted = store.last_gc_stats()
        assert persisted == summary
        assert persisted["reclaimed_bytes"] == summary["scanned_bytes"]

    def test_gc_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        summary = store.gc(max_bytes=100)
        assert summary["scanned_entries"] == 0
        assert summary["removed_entries"] == 0


class TestCacheCLI:
    def test_cache_gc_requires_a_policy(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache", str(tmp_path)]) == 1
        assert "needs a policy" in capsys.readouterr().err

    def test_cache_gc_json_roundtrip(self, tmp_path, smoke_scale, capsys):
        store = ResultStore(tmp_path)
        _fill(store, 2, smoke_scale)
        code = main(
            ["cache", "gc", "--cache", str(tmp_path), "--max-bytes", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed_entries"] == 2
        assert payload["root"] == str(store.root)

    def test_cache_gc_size_suffixes(self, tmp_path, smoke_scale, capsys):
        store = ResultStore(tmp_path)
        _fill(store, 2, smoke_scale)
        code = main(
            ["cache", "gc", "--cache", str(tmp_path), "--max-bytes", "1g"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reclaimed 0 bytes" in out
        assert store.disk_stats()["entries"] == 2

    def test_cache_stats_surfaces_last_gc(self, tmp_path, smoke_scale, capsys):
        store = ResultStore(tmp_path)
        _fill(store, 2, smoke_scale)
        store.gc(max_bytes=0)
        assert main(["cache", "stats", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "last gc:" in out and "entries evicted" in out
        assert main(["cache", "stats", "--cache", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["last_gc"]["removed_entries"] == 2
