"""Unit tests for experiment result containers and serialisation."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.results import ExperimentResult, Series


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            Series("bad", x=[1, 2], y=[1.0])

    def test_accessors(self):
        series = Series("s", x=[1, 2, 4], y=[10.0, 20.0, 40.0])
        assert len(series) == 3
        assert series.y_at(2) == 20.0
        assert series.final() == 40.0

    def test_y_at_missing_point(self):
        series = Series("s", x=[1], y=[1.0])
        with pytest.raises(ExperimentError):
            series.y_at(3)

    def test_empty_series_final_rejected(self):
        series = Series("empty", x=[], y=[])
        with pytest.raises(ExperimentError):
            series.final()

    def test_dict_round_trip(self):
        series = Series("s", x=[1, 2], y=[3.0, 4.0], metadata={"m": 2})
        clone = Series.from_dict(series.as_dict())
        assert clone.label == "s"
        assert clone.x == [1, 2]
        assert clone.metadata == {"m": 2}


class TestExperimentResult:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figX", "Example", parameters={"nodes": 10}, notes="n")
        result.add(Series("a", x=[1, 2], y=[1.0, 2.0]))
        result.add(Series("b", x=[1, 2], y=[3.0, 4.0]))
        return result

    def test_labels_get_and_contains(self):
        result = self.make_result()
        assert result.labels() == ["a", "b"]
        assert result.get("b").final() == 4.0
        assert "a" in result
        assert "missing" not in result

    def test_get_missing_label(self):
        with pytest.raises(ExperimentError):
            self.make_result().get("zzz")

    def test_json_round_trip(self, tmp_path):
        result = self.make_result()
        path = result.save_json(tmp_path / "figX.json")
        loaded = ExperimentResult.load_json(path)
        assert loaded.experiment_id == "figX"
        assert loaded.get("a").y == [1.0, 2.0]
        assert loaded.parameters == {"nodes": 10}

    def test_csv_export(self, tmp_path):
        result = self.make_result()
        path = result.save_csv(tmp_path / "figX.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "label,x,y"
        assert len(lines) == 1 + 4  # header + two points per series

    def test_to_table_renders_all_series(self):
        table = self.make_result().to_table()
        assert "figX" in table
        assert "a" in table and "b" in table
        assert "notes:" in table

    def test_to_table_subsamples_long_series(self):
        result = ExperimentResult("long", "Long series")
        result.add(Series("big", x=list(range(100)), y=[float(i) for i in range(100)]))
        table = result.to_table(max_points=5)
        # Far fewer than 100 points rendered.
        assert table.count("(") < 20

    def test_dict_round_trip(self):
        result = self.make_result()
        clone = ExperimentResult.from_dict(result.as_dict())
        assert clone.labels() == result.labels()
        assert clone.notes == result.notes
