"""Smoke tests for the example scripts and the CLI's extension models."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_SCRIPTS = [
    "quickstart.py",
    "gnutella_file_sharing.py",
    "cutoff_tradeoff_study.py",
    "churn_maintenance.py",
    "join_strategy_comparison.py",
    "reproduce_paper.py",
    "custom_scenario.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


class TestExamples:
    def test_all_examples_exist(self):
        for name in EXAMPLE_SCRIPTS:
            assert (EXAMPLES_DIR / name).exists(), name

    @pytest.mark.parametrize("name", EXAMPLE_SCRIPTS)
    def test_example_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} has no main()"

    def test_cutoff_study_row_helper(self):
        """The trade-off study's measurement cell works on a tiny input."""
        module = load_example("cutoff_tradeoff_study.py")
        module.NODES = 200
        module.QUERIES = 5
        row = module.row_for(2, 10)
        assert row["m"] == 2
        assert row["kmax"] <= 10
        assert row["fl_hits"] > 0

    def test_quickstart_describe_handles_degenerate_graph(self, capsys):
        module = load_example("quickstart.py")
        from repro.core.graph import Graph

        module.describe("tiny", Graph.complete(3))
        assert "tiny" in capsys.readouterr().out


class TestCLIExtensions:
    def test_generate_nonlinear_pa_via_cli(self, capsys):
        code = main(
            ["generate", "nlpa", "--nodes", "150", "--stubs", "2", "--cutoff", "12",
             "--seed", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameters"]["model"] == "nlpa"
        assert payload["stats"]["max_degree"] <= 12

    def test_list_includes_all_seventeen_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert len(output.strip().splitlines()) >= 17
