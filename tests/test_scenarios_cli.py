"""CLI tests for the scenario verbs and the machine-readable --json outputs.

Covers ``repro run`` (file, --inline, built-in id; caching incl. the
acceptance path "user-authored scenario, --jobs 2, second invocation is a
full cache hit"), ``repro scenarios list/show``, and ``repro figure/suite
--json``.
"""

from __future__ import annotations

import json


from repro.cli import main
from repro.scenarios import ScenarioSpec

#: A scenario no built-in figure covers: PF (an algorithm the figures never
#: exercise) on CM with a cutoff sweep.
PF_ON_CM = {
    "id": "pf-on-cm-cutoff-sweep",
    "title": "Probabilistic flooding on CM with a cutoff sweep",
    "topology": {"model": "cm", "exponent": 2.6, "stubs": 2},
    "sweep": {"axes": {"hard_cutoff": [10, 40, None]}},
    "label": "pf m={m}, {kc}",
    "measurement": {
        "kind": "search-curve",
        "algorithm": "pf",
        "params": {"forward_probability": 0.5},
    },
}


def _run_json(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


class TestRunCommand:
    def test_user_scenario_file_with_cache_and_jobs(self, capsys, tmp_path):
        """The acceptance path: user JSON, parallel fan-out, full cache hit."""
        spec_path = tmp_path / "pf_on_cm.json"
        spec_path.write_text(json.dumps(PF_ON_CM))
        cache = tmp_path / "cache"
        argv = ["run", str(spec_path), "--scale", "smoke", "--jobs", "2",
                "--cache", str(cache), "--json"]
        first = _run_json(capsys, argv)
        assert first["scenario"] == "pf-on-cm-cutoff-sweep"
        assert first["from_cache"] is False
        labels = [series["label"] for series in first["result"]["series"]]
        assert labels == ["pf m=2, kc=10", "pf m=2, kc=40", "pf m=2, no kc"]
        assert all(series["metadata"]["algorithm"] == "pf"
                   for series in first["result"]["series"])
        second = _run_json(capsys, argv)
        assert second["from_cache"] is True
        assert second["result"] == first["result"]

    def test_equivalent_spelling_hits_the_same_cache_entry(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(PF_ON_CM))
        cache = tmp_path / "cache"
        _run_json(capsys, ["run", str(spec_path), "--scale", "smoke",
                           "--cache", str(cache), "--json"])
        # Same scenario, different spelling: canonical panels form + the
        # registry alias for the algorithm.
        respelled = ScenarioSpec.from_dict(PF_ON_CM).to_dict()
        respelled["panels"][0]["series"][0]["measurement"]["algorithm"] = (
            "probabilistic_flooding"
        )
        payload = _run_json(capsys, [
            "run", "--inline", json.dumps(respelled), "--scale", "smoke",
            "--cache", str(cache), "--json",
        ])
        assert payload["from_cache"] is True

    def test_inline_spec_prints_table(self, capsys):
        argv = ["run", "--inline", json.dumps(PF_ON_CM), "--scale", "smoke"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pf-on-cm-cutoff-sweep" in out
        assert "pf m=2, kc=10" in out

    def test_builtin_id_runs(self, capsys):
        payload = _run_json(capsys, ["run", "table2", "--scale", "smoke", "--json"])
        assert payload["scenario"] == "table2"
        assert payload["result"]["series"]

    def test_builtin_id_shares_the_figure_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = _run_json(capsys, ["figure", "table2", "--scale", "smoke",
                                   "--cache", cache, "--json"])
        assert first["from_cache"] is False
        via_run = _run_json(capsys, ["run", "table2", "--scale", "smoke",
                                     "--cache", cache, "--json"])
        assert via_run["from_cache"] is True
        assert via_run["result"] == first["result"]

    def test_out_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        assert main(["run", "--inline", json.dumps(PF_ON_CM),
                     "--scale", "smoke", "--out", str(out_dir)]) == 0
        assert (out_dir / "pf-on-cm-cutoff-sweep.json").exists()
        assert (out_dir / "pf-on-cm-cutoff-sweep.csv").exists()

    def test_missing_source_is_an_error(self, capsys):
        assert main(["run"]) == 1
        assert "scenario source" in capsys.readouterr().err

    def test_both_sources_is_an_error(self, capsys):
        assert main(["run", "spec.json", "--inline", "{}"]) == 1

    def test_rw_accepts_k_min_override_param(self, capsys):
        spec = dict(PF_ON_CM, id="rw-kmin",
                    sweep={"axes": {"hard_cutoff": [10]}},
                    measurement={"kind": "search-curve", "algorithm": "rw",
                                 "params": {"k_min": 3}},
                    label="rw m={m}, {kc}")
        payload = _run_json(capsys, ["run", "--inline", json.dumps(spec),
                                     "--scale", "smoke", "--json"])
        assert payload["result"]["series"][0]["label"] == "rw m=2, kc=10"

    def test_directory_as_spec_path_is_an_error(self, capsys, tmp_path):
        assert main(["run", str(tmp_path)]) == 1
        assert "cannot read scenario file" in capsys.readouterr().err

    def test_non_utf8_spec_file_is_an_error(self, capsys, tmp_path):
        binary = tmp_path / "spec.json"
        binary.write_bytes(b"\xff\xfe\x00broken")
        assert main(["run", str(binary)]) == 1
        assert "cannot read scenario file" in capsys.readouterr().err

    def test_nonexistent_file_names_builtins(self, capsys):
        assert main(["run", "no_such_spec.json"]) == 1
        assert "repro scenarios list" in capsys.readouterr().err

    def test_invalid_spec_is_actionable(self, capsys):
        bad = dict(PF_ON_CM, measurement={"kind": "search-curve",
                                          "algorithm": "dht"})
        assert main(["run", "--inline", json.dumps(bad)]) == 1
        assert "unknown search algorithm" in capsys.readouterr().err


class TestScenariosCommand:
    def test_list_shows_every_builtin(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for scenario_id in ("fig1", "fig9", "table2", "ablation_robustness"):
            assert scenario_id in out

    def test_bare_scenarios_defaults_to_list(self, capsys):
        assert main(["scenarios"]) == 0
        assert "fig9" in capsys.readouterr().out

    def test_show_round_trips_through_the_parser(self, capsys):
        assert main(["scenarios", "show", "fig9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        spec = ScenarioSpec.from_dict(payload)
        assert spec.scenario_id == "fig9"

    def test_show_compiled_labels(self, capsys):
        payload = _run_json(
            capsys, ["scenarios", "show", "fig9", "--scale", "smoke"])
        assert payload["scenario"] == "fig9"
        assert "pa m=1, kc=10" in payload["series"]
        assert len(payload["spec_hash"]) == 64

    def test_show_unknown_id(self, capsys):
        assert main(["scenarios", "show", "fig99"]) == 1
        assert "built-ins" in capsys.readouterr().err


class TestJsonOutputs:
    def test_figure_json_payload(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = ["figure", "table2", "--scale", "smoke",
                "--cache", str(cache), "--json"]
        first = _run_json(capsys, argv)
        assert first["experiment_id"] == "table2"
        assert first["from_cache"] is False
        assert all("metadata" in series for series in first["result"]["series"])
        second = _run_json(capsys, argv)
        assert second["from_cache"] is True
        assert second["result"] == first["result"]

    def test_suite_json_payload(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = ["suite", "--scale", "smoke", "--only", "table2",
                "natural_cutoff", "--cache", str(cache), "--json"]
        first = _run_json(capsys, argv)
        assert [entry["experiment_id"] for entry in first["entries"]] == [
            "table2", "natural_cutoff"]
        assert first["cache_hits"] == 0
        assert all("result" in entry for entry in first["entries"])
        second = _run_json(capsys, argv)
        assert second["cache_hits"] == 2
        assert all(entry["from_cache"] for entry in second["entries"])
