"""Smoke tests for the experiment registry and every figure module.

Each experiment runs at the ``smoke`` scale and is checked for structural
sanity (non-empty series, the labels the paper's panels need).  The deeper
"does the trend match the paper" checks live in
``test_integration_paper_trends.py``; these tests make sure every harness
module at least executes end to end.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.registry import (
    available_experiments,
    experiment_titles,
    get_experiment,
    run_experiment,
)
from repro.experiments.results import ExperimentResult

ALL_EXPERIMENTS = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table1",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "messaging",
    "natural_cutoff",
    "ablation_min_degree",
    "ablation_robustness",
]


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        assert set(available_experiments()) == set(ALL_EXPERIMENTS)

    def test_titles_available(self):
        titles = experiment_titles()
        assert all(titles[exp_id] for exp_id in ALL_EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_run_experiment_returns_result(self, smoke_scale):
        result = run_experiment("table2", scale=smoke_scale)
        assert isinstance(result, ExperimentResult)


@pytest.mark.parametrize("experiment_id", ALL_EXPERIMENTS)
def test_experiment_runs_at_smoke_scale(experiment_id, smoke_scale):
    result = run_experiment(experiment_id, scale=smoke_scale)
    assert result.experiment_id == experiment_id
    assert result.series, f"{experiment_id} produced no series"
    assert result.parameters["name"] == "smoke"
    for series in result.series:
        assert len(series.x) == len(series.y)
        assert series.label


class TestSpecificStructure:
    def test_table2_matches_paper_classification(self, smoke_scale):
        result = run_experiment("table2", scale=smoke_scale)
        for series in result.series:
            assert series.metadata["matches_paper"] is True

    def test_fig1_contains_exponent_sweep(self, smoke_scale):
        result = run_experiment("fig1", scale=smoke_scale)
        sweep_labels = [label for label in result.labels() if label.startswith("gamma vs kc")]
        assert sweep_labels
        for label in sweep_labels:
            series = result.get(label)
            assert all(1.0 < value < 4.5 for value in series.y)

    def test_fig3_no_cutoff_series_has_super_hub(self, smoke_scale):
        result = run_experiment("fig3", scale=smoke_scale)
        no_cutoff = [
            result.get(label) for label in result.labels() if "no kc" in label
        ]
        assert no_cutoff
        # The maximum degree recorded in metadata should be a large fraction
        # of the (smoke-scale) network size.
        assert any(series.metadata["max_degree"] > 100 for series in no_cutoff)

    def test_natural_cutoff_measured_grows_with_n(self, smoke_scale):
        result = run_experiment("natural_cutoff", scale=smoke_scale)
        measured = result.get("measured kmax m=1")
        assert measured.y[-1] > measured.y[0]

    def test_ablation_min_degree_has_ratio_series(self, smoke_scale):
        result = run_experiment("ablation_min_degree", scale=smoke_scale)
        ratio = result.get("cutoff penalty ratio (no kc / kc=10)")
        assert all(value > 0 for value in ratio.y)

    def test_results_are_json_serialisable(self, smoke_scale, tmp_path):
        result = run_experiment("table1", scale=smoke_scale)
        path = result.save_json(tmp_path / "table1.json")
        loaded = ExperimentResult.load_json(path)
        assert loaded.labels() == result.labels()
