"""Unit tests for the probabilistic-flooding extension."""

from __future__ import annotations

import pytest

from repro.core.errors import SearchError
from repro.search.flooding import FloodingSearch
from repro.search.probabilistic_flooding import (
    ProbabilisticFloodingSearch,
    probabilistic_flood,
)
from repro.search.registry import available_search_algorithms, create_search_algorithm


class TestProbabilisticFlooding:
    def test_probability_one_equals_flooding(self, pa_graph_cutoff):
        fl = FloodingSearch().run(pa_graph_cutoff, 0, ttl=4)
        pf = ProbabilisticFloodingSearch(1.0).run(pa_graph_cutoff, 0, ttl=4, rng=1)
        assert pf.hits == fl.hits
        assert pf.messages == fl.messages

    def test_lower_probability_fewer_messages(self, pa_graph_small):
        full = ProbabilisticFloodingSearch(1.0).run(pa_graph_small, 0, ttl=4, rng=2)
        half = ProbabilisticFloodingSearch(0.5).run(pa_graph_small, 0, ttl=4, rng=2)
        assert half.messages < full.messages
        assert half.hits <= full.hits

    def test_visited_subset_of_flooding(self, pa_graph_cutoff):
        fl = FloodingSearch().run(pa_graph_cutoff, 3, ttl=5)
        pf = ProbabilisticFloodingSearch(0.6).run(pa_graph_cutoff, 3, ttl=5, rng=3)
        assert pf.visited <= fl.visited

    def test_hits_monotone_in_ttl(self, pa_graph_cutoff):
        result = probabilistic_flood(pa_graph_cutoff, 1, 6, forward_probability=0.7, rng=4)
        assert all(b >= a for a, b in zip(result.hits_per_ttl, result.hits_per_ttl[1:]))

    def test_reproducible(self, pa_graph_cutoff):
        a = probabilistic_flood(pa_graph_cutoff, 1, 5, forward_probability=0.5, rng=9)
        b = probabilistic_flood(pa_graph_cutoff, 1, 5, forward_probability=0.5, rng=9)
        assert a.hits_per_ttl == b.hits_per_ttl

    def test_target_detection(self, path_graph):
        result = probabilistic_flood(path_graph, 0, 4, forward_probability=1.0, rng=1,
                                     target=3)
        assert result.found_at == 3

    def test_invalid_probability(self):
        with pytest.raises(SearchError):
            ProbabilisticFloodingSearch(0.0)
        with pytest.raises(SearchError):
            ProbabilisticFloodingSearch(1.5)

    def test_registered_in_registry(self):
        assert "pf" in available_search_algorithms()
        algorithm = create_search_algorithm("pf", forward_probability=0.3)
        assert algorithm.algorithm_name == "pf"
        assert algorithm.forward_probability == 0.3

    def test_ttl_zero(self, path_graph):
        result = probabilistic_flood(path_graph, 0, 0, rng=1)
        assert result.hits == 0
        assert result.messages == 0
