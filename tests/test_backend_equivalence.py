"""Cross-backend equivalence suite: frozen CSR vs. the adjacency reference.

The CSR backend's contract is *exact* interchangeability: for every search
algorithm, on every topology model, a frozen graph must produce results that
are identical to the mutable dict-of-sets graph — same hits-vs-τ curve, same
message counts, same visited sets, and (for the stochastic algorithms) the
same RNG stream consumption, so that freezing a graph can never silently
shift the seeds of anything that runs afterwards.  These tests pin that
contract at every layer: single queries, metric curves, the message-count
normalization, the realization runner, the parallel engine, and a whole
figure experiment.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.backend import active_backend, freeze_for_backend, use_backend
from repro.kernels.dispatch import use_kernels
from repro.core.csr import CSRGraph
from repro.core.errors import ConfigurationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.engine.executor import ParallelExecutor
from repro.experiments.registry import run_experiment
from repro.generators.cm import generate_cm
from repro.generators.dapa import generate_dapa
from repro.generators.hapa import generate_hapa
from repro.generators.pa import generate_pa
from repro.search.flooding import FloodingSearch
from repro.search.metrics import normalized_walk_curve, search_curve
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.search.probabilistic_flooding import ProbabilisticFloodingSearch
from repro.search.random_walk import RandomWalkSearch


# --------------------------------------------------------------------------- #
# Topologies: one small realization of every registered generator family
# --------------------------------------------------------------------------- #
def _build_graphs():
    return {
        "pa": generate_pa(300, stubs=2, hard_cutoff=10, seed=101),
        "cm": generate_cm(300, exponent=2.5, min_degree=2, hard_cutoff=20, seed=77),
        "hapa": generate_hapa(200, stubs=1, hard_cutoff=8, seed=55),
        "dapa": generate_dapa(150, stubs=2, hard_cutoff=10, local_ttl=4, seed=66),
    }


@pytest.fixture(scope="module")
def graphs():
    return _build_graphs()


GENERATORS = ["pa", "cm", "hapa", "dapa"]

# Execution tiers for the frozen backend's stochastic queries: the Python
# loops, and the kernel tier of repro.kernels (JIT-compiled under numba,
# interpreted otherwise — identical draws either way).  Every equivalence
# cell below must hold for both, against the same adjacency reference.
KERNEL_TIERS = ["python", "jit"]

# Every registered search algorithm (one representative configuration each,
# plus variants that exercise backend-sensitive code paths).
ALGORITHMS = {
    "fl": lambda: FloodingSearch(),
    "fl-source-hit": lambda: FloodingSearch(count_source_as_hit=True),
    "nf": lambda: NormalizedFloodingSearch(k_min=2),
    "nf-auto-kmin": lambda: NormalizedFloodingSearch(),  # uses graph.min_degree()
    "pf": lambda: ProbabilisticFloodingSearch(forward_probability=0.5),
    "rw": lambda: RandomWalkSearch(walkers=3),
    "rw-backtracking": lambda: RandomWalkSearch(walkers=2, allow_backtracking=True),
}


def _assert_identical(result_adj, result_csr):
    assert result_adj.hits_per_ttl == result_csr.hits_per_ttl
    assert result_adj.messages_per_ttl == result_csr.messages_per_ttl
    assert result_adj.visited == result_csr.visited
    assert result_adj.found_at == result_csr.found_at
    assert result_adj.source == result_csr.source
    assert result_adj.algorithm == result_csr.algorithm


class TestQueryEquivalence:
    """algorithm × generator: single queries must match field by field."""

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("model", GENERATORS)
    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    def test_identical_results_and_rng_consumption(
        self, graphs, model, algorithm_name, kernels
    ):
        graph = graphs[model]
        frozen = graph.freeze()
        algorithm = ALGORITHMS[algorithm_name]()
        nodes = graph.nodes()
        target = nodes[len(nodes) // 2]
        for seed, source in [(7, nodes[0]), (19, nodes[3]), (23, nodes[-1])]:
            rng_adj, rng_csr = RandomSource(seed), RandomSource(seed)
            result_adj = algorithm.run(graph, source, 8, rng=rng_adj, target=target)
            with use_kernels(kernels):
                result_csr = algorithm.run(
                    frozen, source, 8, rng=rng_csr, target=target
                )
            _assert_identical(result_adj, result_csr)
            # Both streams must sit at the same position afterwards: the
            # next draw from each is equal, so backend (and kernel-tier)
            # choice can never shift the seeds of whatever runs next.
            assert rng_adj.random() == rng_csr.random()

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    def test_ttl_zero_and_isolated_source(self, algorithm_name, kernels):
        graph = Graph.from_edges(4, [(0, 1), (1, 2)])  # node 3 is isolated
        frozen = graph.freeze()
        algorithm = ALGORITHMS[algorithm_name]()
        for source, ttl in [(0, 0), (3, 5)]:
            rng_adj, rng_csr = RandomSource(3), RandomSource(3)
            result_adj = algorithm.run(graph, source, ttl, rng=rng_adj)
            with use_kernels(kernels):
                result_csr = algorithm.run(frozen, source, ttl, rng=rng_csr)
            _assert_identical(result_adj, result_csr)
            assert rng_adj.random() == rng_csr.random()


class TestCurveEquivalence:
    """Metric-level curves (what the figures actually average)."""

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("model", GENERATORS)
    @pytest.mark.parametrize(
        "algorithm_name", ["fl", "nf", "pf", "rw"]
    )
    def test_search_curve_identical(self, graphs, model, algorithm_name, kernels):
        graph = graphs[model]
        frozen = graph.freeze()
        ttl_values = [1, 2, 4, 6, 8]
        curve_adj = search_curve(
            graph, ALGORITHMS[algorithm_name](), ttl_values, queries=25, rng=5
        )
        with use_kernels(kernels):
            curve_csr = search_curve(
                frozen, ALGORITHMS[algorithm_name](), ttl_values, queries=25, rng=5
            )
        assert curve_adj.as_dict() == curve_csr.as_dict()

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("model", GENERATORS)
    def test_normalized_walk_curve_identical(self, graphs, model, kernels):
        graph = graphs[model]
        frozen = graph.freeze()
        curve_adj = normalized_walk_curve(graph, [2, 4, 6], k_min=2, queries=20, rng=9)
        with use_kernels(kernels):
            curve_csr = normalized_walk_curve(
                frozen, [2, 4, 6], k_min=2, queries=20, rng=9
            )
        assert curve_adj.as_dict() == curve_csr.as_dict()

    def test_search_curve_error_parity(self, graphs):
        """Both backends raise the same SearchError for a bad source."""
        from repro.core.errors import SearchError

        graph = graphs["pa"]
        frozen = graph.freeze()
        for subject in (graph, frozen):
            with pytest.raises(SearchError):
                search_curve(
                    subject, FloodingSearch(), [1, 2], sources=[10**6], rng=1
                )

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    def test_search_curve_stream_position(self, graphs, kernels):
        """The whole pipeline leaves both RNGs at the same position."""
        graph = graphs["pa"]
        frozen = graph.freeze()
        for factory in (FloodingSearch, NormalizedFloodingSearch):
            rng_adj, rng_csr = RandomSource(11), RandomSource(11)
            search_curve(graph, factory(), [1, 3, 5], queries=15, rng=rng_adj)
            with use_kernels(kernels):
                search_curve(frozen, factory(), [1, 3, 5], queries=15, rng=rng_csr)
            assert rng_adj.random() == rng_csr.random()


class _CountingSource(RandomSource):
    """A RandomSource that tallies how many draws of each kind it serves."""

    def __init__(self, seed=None):
        super().__init__(seed)
        self.calls = Counter()

    def random(self):
        self.calls["random"] += 1
        return super().random()

    def randint(self, low, high):
        self.calls["randint"] += 1
        return super().randint(low, high)

    def sample(self, items, count):
        self.calls["sample"] += 1
        return super().sample(items, count)

    def shuffled(self, items):
        self.calls["shuffled"] += 1
        return super().shuffled(items)


class TestDrawCountRegression:
    """Pin the exact number of draws so backends can never shift seeds.

    The counts below were measured on the reference (adjacency) backend;
    the test asserts the frozen backend draws *exactly* as often, and that
    the totals never drift for either backend.  If an intentional algorithm
    change alters them, update the pinned numbers in the same commit.
    """

    PINNED = {
        "nf": {"sample": 47},
        "pf": {"random": 784},
        "rw": {"randint": 24},
    }

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("algorithm_name", sorted(PINNED))
    def test_exact_draw_counts(self, graphs, algorithm_name, kernels):
        # A _CountingSource is a RandomSource *subclass*, so the kernel
        # tier's dispatch must refuse it (the kernels would consume the MT
        # stream underneath the counting methods) — the pinned counts hold
        # under every tier because instrumented sources keep the
        # reference path.
        graph = graphs["pa"]
        frozen = graph.freeze()
        algorithm = ALGORITHMS[algorithm_name]()
        rng_adj, rng_csr = _CountingSource(7), _CountingSource(7)
        algorithm.run(graph, 5, 8, rng=rng_adj)
        with use_kernels(kernels):
            algorithm.run(frozen, 5, 8, rng=rng_csr)
        assert dict(rng_adj.calls) == self.PINNED[algorithm_name]
        assert dict(rng_csr.calls) == self.PINNED[algorithm_name]

    def test_plain_source_stream_consumption_matches_counts(self, graphs):
        """Kernel-tier queries advance a plain RandomSource exactly as far
        as the counted reference draws say they must."""
        graph = graphs["pa"]
        frozen = graph.freeze()
        for algorithm_name in sorted(self.PINNED):
            algorithm = ALGORITHMS[algorithm_name]()
            rng_ref, rng_jit = RandomSource(7), RandomSource(7)
            algorithm.run(graph, 5, 8, rng=rng_ref)
            with use_kernels("jit"):
                algorithm.run(frozen, 5, 8, rng=rng_jit)
            assert rng_ref.random() == rng_jit.random(), algorithm_name

    def test_flooding_consumes_no_draws(self, graphs):
        graph = graphs["pa"]
        frozen = graph.freeze()
        for subject in (graph, frozen):
            rng = _CountingSource(7)
            FloodingSearch().run(subject, 5, 8, rng=rng)
            assert not rng.calls


class TestBackendContext:
    def test_use_backend_scopes_selection(self):
        assert active_backend() == "adj"
        with use_backend("csr"):
            assert active_backend() == "csr"
            with use_backend(None):  # None leaves the ambient choice alone
                assert active_backend() == "csr"
        assert active_backend() == "adj"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            with use_backend("gpu"):
                pass  # pragma: no cover

    def test_freeze_for_backend(self, graphs):
        graph = graphs["pa"]
        assert freeze_for_backend(graph, "adj") is graph
        frozen = freeze_for_backend(graph, "csr")
        assert isinstance(frozen, CSRGraph)
        assert freeze_for_backend(frozen, "csr") is frozen
        assert freeze_for_backend(frozen, "adj") is frozen


class TestExperimentEquivalence:
    """Whole experiments — the acceptance criterion for ``--backend csr``."""

    def test_fig9_byte_identical(self, smoke_scale):
        adj = run_experiment("fig9", scale=smoke_scale)
        csr = run_experiment("fig9", scale=smoke_scale, backend="csr")
        assert [series.as_dict() for series in adj.series] == [
            series.as_dict() for series in csr.series
        ]

    def test_fig6_flooding_byte_identical(self, smoke_scale):
        adj = run_experiment("fig6", scale=smoke_scale)
        csr = run_experiment("fig6", scale=smoke_scale, backend="csr")
        assert [series.as_dict() for series in adj.series] == [
            series.as_dict() for series in csr.series
        ]

    def test_fig9_csr_parallel_byte_identical(self, smoke_scale):
        """The csr backend must survive the hop into worker processes.

        ``realizations=2`` matters: smoke's single-realization batches
        degenerate to in-process execution, which would silently skip the
        pickled-``RealizationSpec``-in-a-worker path under test here.
        """
        from dataclasses import replace

        scale = replace(smoke_scale, realizations=2)
        adj = run_experiment("fig9", scale=scale)
        with ParallelExecutor(jobs=2) as executor:
            csr = run_experiment(
                "fig9", scale=scale, backend="csr", executor=executor
            )
        assert [series.as_dict() for series in adj.series] == [
            series.as_dict() for series in csr.series
        ]


class TestRunRealizationsBackend:
    def test_measure_receives_frozen_graph(self, smoke_scale):
        from repro.experiments.runner import run_realizations

        seen = []

        def build(seed):
            return generate_pa(60, stubs=1, seed=seed)

        def measure(graph, seed):
            seen.append(type(graph).__name__)
            return [float(graph.number_of_edges)]

        adj_result = run_realizations(smoke_scale, build, measure, backend="adj")
        csr_result = run_realizations(smoke_scale, build, measure, backend="csr")
        assert adj_result == csr_result
        assert seen == ["Graph", "CSRGraph"]

    def test_ambient_backend_is_captured(self, smoke_scale):
        from repro.experiments.runner import run_realizations

        seen = []

        def build(seed):
            return generate_pa(60, stubs=1, seed=seed)

        def measure(graph, seed):
            seen.append(type(graph).__name__)
            return [0.0]

        with use_backend("csr"):
            run_realizations(smoke_scale, build, measure)
        assert seen == ["CSRGraph"]


class TestKernelTierExperiments:
    """Whole experiments under ``kernels="jit"`` — the tier's acceptance bar.

    fig9 (NF on PA/CM/HAPA) exercises the kernel dispatch through the full
    stack: scenario compiler → engine tasks → ``RealizationSpec.kernels``
    capture → batched kernel curves — and must reproduce the adjacency
    reference byte for byte, serial and across worker processes.
    """

    def test_fig9_jit_byte_identical(self, smoke_scale):
        adj = run_experiment("fig9", scale=smoke_scale)
        jit = run_experiment(
            "fig9", scale=smoke_scale, backend="csr", kernels="jit"
        )
        assert [series.as_dict() for series in adj.series] == [
            series.as_dict() for series in jit.series
        ]

    def test_fig9_jit_parallel_byte_identical(self, smoke_scale):
        """``kernels`` must survive the hop into worker processes (pickled
        into each RealizationSpec), like ``backend`` does."""
        from dataclasses import replace

        scale = replace(smoke_scale, realizations=2)
        adj = run_experiment("fig9", scale=scale)
        with ParallelExecutor(jobs=2) as executor:
            jit = run_experiment(
                "fig9", scale=scale, backend="csr", kernels="jit",
                executor=executor,
            )
        assert [series.as_dict() for series in adj.series] == [
            series.as_dict() for series in jit.series
        ]


class TestGenerationTierEquivalence:
    """Topology *generation* over kernel tiers: byte-identical graphs.

    The generator kernels (repro.kernels.generators) extend the tier
    contract upstream of the search phase: for every construction family,
    a jit build must emit the same nodes and edges in the same insertion
    order (pinned through the frozen CSR arrays), and consume exactly the
    reference's draws — so a full realization (generate + search) is
    byte-identical end to end on every tier.  The per-family draw counts
    and deeper edge cases live in tests/test_kernels_generators.py.
    """

    BUILDERS = {
        "pa": lambda rng: generate_pa(300, stubs=2, hard_cutoff=10, rng=rng),
        "cm": lambda rng: generate_cm(
            300, exponent=2.5, min_degree=2, hard_cutoff=20, rng=rng
        ),
        "hapa": lambda rng: generate_hapa(200, stubs=1, hard_cutoff=8, rng=rng),
        "dapa": lambda rng: generate_dapa(
            150, stubs=2, hard_cutoff=10, local_ttl=4, rng=rng
        ),
    }

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    @pytest.mark.parametrize("model", GENERATORS)
    def test_generation_byte_identical_across_tiers(self, model, kernels):
        import numpy as np

        reference_rng = RandomSource(seed=909)
        tier_rng = RandomSource(seed=909)
        with use_kernels("python"):
            reference = self.BUILDERS[model](reference_rng)
        with use_kernels(kernels):
            subject = self.BUILDERS[model](tier_rng)
        assert reference.nodes() == subject.nodes()
        frozen_reference = reference.freeze()
        frozen_subject = subject.freeze()
        assert np.array_equal(frozen_reference._indptr, frozen_subject._indptr)
        assert np.array_equal(frozen_reference._indices, frozen_subject._indices)
        # Identical stream position: nothing downstream can shift seeds.
        assert reference_rng.random() == tier_rng.random()

    @pytest.mark.parametrize("kernels", KERNEL_TIERS)
    def test_generate_then_search_end_to_end(self, kernels):
        """One realization generated *and* searched on a single stream per
        tier must agree field for field."""
        results = {}
        for tier in ("python", kernels):
            rng = RandomSource(seed=4242)
            with use_kernels(tier):
                graph = generate_pa(250, stubs=2, hard_cutoff=12, rng=rng)
                subject = freeze_for_backend(graph, "csr" if tier == "jit" else "adj")
                results[tier] = NormalizedFloodingSearch(k_min=2).run(
                    subject, 0, 6, rng=rng, target=17
                )
        _assert_identical(results["python"], results[kernels])

    def test_fig1_jit_generation_byte_identical(self, smoke_scale):
        """A whole degree-distribution experiment (generation-dominated)
        under kernels='jit' — the generator tier's acceptance bar."""
        python_result = run_experiment("fig1", scale=smoke_scale, kernels="python")
        jit_result = run_experiment("fig1", scale=smoke_scale, kernels="jit")
        assert [series.as_dict() for series in python_result.series] == [
            series.as_dict() for series in jit_result.series
        ]

    def test_fig1_jit_generation_parallel_byte_identical(self, smoke_scale):
        """The kernels choice must reach generation inside worker
        processes (captured into each degree-sequence RealizationSpec)."""
        from dataclasses import replace

        scale = replace(smoke_scale, realizations=2)
        python_result = run_experiment("fig1", scale=scale, kernels="python")
        with ParallelExecutor(jobs=2) as executor:
            jit_result = run_experiment(
                "fig1", scale=scale, kernels="jit", executor=executor
            )
        assert [series.as_dict() for series in python_result.series] == [
            series.as_dict() for series in jit_result.series
        ]
