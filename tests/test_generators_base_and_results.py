"""Unit tests for the generator base class, GenerationResult, and QueryResult."""

from __future__ import annotations

import pytest

from repro.generators.base import GenerationResult, TopologyGenerator
from repro.generators.pa import PreferentialAttachmentGenerator
from repro.search.base import QueryResult
from repro.core.errors import SearchError
from repro.core.graph import Graph


class TestGenerationResult:
    def test_summary_filters_non_scalar_metadata(self):
        graph = Graph.complete(3)
        result = GenerationResult(
            graph=graph,
            model="demo",
            parameters={"n": 3},
            metadata={"count": 2, "graph_object": graph, "note": "ok"},
            elapsed_seconds=0.5,
        )
        summary = result.summary()
        assert summary["model"] == "demo"
        assert summary["metadata"] == {"count": 2, "note": "ok"}
        assert summary["stats"]["number_of_nodes"] == 3

    def test_elapsed_time_recorded(self):
        result = PreferentialAttachmentGenerator(200, stubs=1, seed=1).generate()
        assert result.elapsed_seconds > 0


class TestTopologyGeneratorBase:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            TopologyGenerator()  # type: ignore[abstract]

    def test_repr_includes_parameters(self):
        generator = PreferentialAttachmentGenerator(100, stubs=2, hard_cutoff=9, seed=4)
        text = repr(generator)
        assert "number_of_nodes" in text
        assert "9" in text

    def test_seed_used_when_no_rng_given(self):
        generator = PreferentialAttachmentGenerator(100, stubs=1, seed=42)
        assert generator.generate_graph() == generator.generate_graph()


class TestQueryResult:
    def make_result(self) -> QueryResult:
        return QueryResult(
            algorithm="fl",
            source=0,
            ttl=3,
            hits_per_ttl=[0, 2, 5, 7],
            messages_per_ttl=[0, 3, 9, 15],
            visited={0, 1, 2},
            target=9,
            found_at=None,
        )

    def test_summary_properties(self):
        result = self.make_result()
        assert result.hits == 7
        assert result.messages == 15
        assert result.success is False

    def test_success_requires_target_and_found(self):
        result = self.make_result()
        result.found_at = 2
        assert result.success is True
        result.target = None
        assert result.success is False

    def test_accessors_clamp_and_validate(self):
        result = self.make_result()
        assert result.hits_at(1) == 2
        assert result.hits_at(99) == 7
        assert result.messages_at(2) == 9
        with pytest.raises(SearchError):
            result.hits_at(-1)
        with pytest.raises(SearchError):
            result.messages_at(-5)
