"""Unit tests for clustering-coefficient analysis."""

from __future__ import annotations

import pytest

from repro.analysis.clustering import average_clustering, local_clustering, transitivity
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.generators.pa import generate_pa


class TestLocalClustering:
    def test_complete_graph_is_fully_clustered(self, complete_graph):
        assert all(local_clustering(complete_graph, node) == 1.0 for node in complete_graph)

    def test_star_center_has_zero_clustering(self, star_graph):
        assert local_clustering(star_graph, 0) == 0.0

    def test_low_degree_nodes_are_zero(self, path_graph):
        assert local_clustering(path_graph, 0) == 0.0
        assert local_clustering(path_graph, 2) == 0.0

    def test_triangle_with_tail(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert local_clustering(graph, 0) == 1.0
        assert local_clustering(graph, 2) == pytest.approx(1 / 3)


class TestAverageClusteringAndTransitivity:
    def test_complete_graph(self, complete_graph):
        assert average_clustering(complete_graph) == 1.0
        assert transitivity(complete_graph) == 1.0

    def test_pa_tree_has_no_clustering(self):
        tree = generate_pa(300, stubs=1, seed=3)
        assert average_clustering(tree) == 0.0
        assert transitivity(tree) == 0.0

    def test_pa_m2_has_some_clustering(self):
        graph = generate_pa(300, stubs=2, seed=3)
        assert average_clustering(graph) > 0.0
        assert 0.0 < transitivity(graph) < 1.0

    def test_sampled_estimate_close_to_exact(self):
        graph = generate_pa(400, stubs=3, seed=5)
        exact = average_clustering(graph)
        sampled = average_clustering(graph, sample_size=150, rng=1)
        assert sampled == pytest.approx(exact, abs=0.1)

    def test_matches_networkx(self):
        import networkx as nx

        graph = generate_pa(200, stubs=2, hard_cutoff=15, seed=7)
        ours = average_clustering(graph)
        reference = nx.average_clustering(graph.to_networkx())
        assert ours == pytest.approx(reference, abs=1e-9)
        assert transitivity(graph) == pytest.approx(
            nx.transitivity(graph.to_networkx()), abs=1e-9
        )

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            average_clustering(Graph())
        with pytest.raises(AnalysisError):
            transitivity(Graph())

    def test_invalid_sample_size(self, complete_graph):
        with pytest.raises(AnalysisError):
            average_clustering(complete_graph, sample_size=0)
