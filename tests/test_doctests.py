"""Run the doctest examples embedded in the library's docstrings."""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.core.csr",
    "repro.core.graph",
    "repro.core.rng",
    "repro.generators.degree_sequence",
    "repro.substrate.horizon",
    "repro.substrate.mesh",
    "repro.analysis.clustering",
    "repro.analysis.components",
    "repro.analysis.cutoff",
    "repro.analysis.degree_distribution",
    "repro.analysis.paths",
    "repro.simulation.events",
    "repro.simulation.peer",
    "repro.simulation.workload",
    "repro.experiments.sweeps",
    "repro.engine.store",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    # importlib is used (rather than attribute access on the package) because
    # several packages re-export a function with the same name as one of
    # their submodules, e.g. ``repro.analysis.degree_distribution``.
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
