"""Tests for the shared-memory graph handoff (:mod:`repro.core.shm`).

The load-bearing guarantees:

* a :class:`SharedCSRGraph` is behaviourally identical to the frozen
  :class:`CSRGraph` it mirrors (zero-copy views of the same arrays);
* its pickled form is a tiny fixed-size *handle* — per-task graph
  transfer cost no longer scales with edge count;
* workers attaching through :class:`ParallelExecutor` compute identical
  results to a serial run on the original graph;
* the segment lifecycle is leak-free: after ``registry.close()`` (or
  executor close) no ``repro-shm-*`` segments remain in ``/dev/shm``.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.core.csr import CSRGraph
from repro.core.errors import GraphError
from repro.core.graph import Graph
from repro.core.shm import (
    SEGMENT_PREFIX,
    SharedCSRGraph,
    SharedGraphRegistry,
    attach_shared_graph,
    share_graph_arguments,
    shm_available,
)
from repro.engine.executor import ParallelExecutor
from repro.engine.tasks import Task
from repro.generators.pa import generate_pa

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory is unavailable"
)

DEV_SHM = Path("/dev/shm")


def _repro_segments() -> set:
    """Names of live repro-owned segments (empty set if /dev/shm is absent)."""
    if not DEV_SHM.is_dir():
        return set()
    return {p.name for p in DEV_SHM.glob(f"{SEGMENT_PREFIX}-*")}


def _frozen(nodes: int = 200, seed: int = 7) -> CSRGraph:
    return generate_pa(nodes, stubs=2, hard_cutoff=15, seed=seed).freeze()


# Module-level so it pickles into worker processes.
def _degree_sum(graph: CSRGraph) -> int:
    return sum(graph.degree(node) for node in graph.nodes())


def _neighbor_signature(graph: CSRGraph, node: int) -> tuple:
    return tuple(graph.neighbors(node))


class TestSharedCSRGraph:
    def test_shared_graph_is_behaviourally_identical(self):
        frozen = _frozen()
        with SharedGraphRegistry() as registry:
            shared = registry.share(frozen)
            assert isinstance(shared, SharedCSRGraph)
            assert shared.number_of_nodes == frozen.number_of_nodes
            assert shared.number_of_edges == frozen.number_of_edges
            assert shared.degree_sequence() == frozen.degree_sequence()
            for node in list(frozen.nodes())[:25]:
                assert shared.neighbors(node) == frozen.neighbors(node)
            assert shared == frozen

    def test_share_is_idempotent_per_graph(self):
        frozen = _frozen()
        with SharedGraphRegistry() as registry:
            assert registry.share(frozen) is registry.share(frozen)

    def test_sharing_a_shared_graph_is_a_no_op(self):
        frozen = _frozen()
        with SharedGraphRegistry() as registry:
            shared = registry.share(frozen)
            with SharedGraphRegistry() as second:
                assert second.share(shared) is shared

    def test_handle_size_does_not_scale_with_edge_count(self):
        """The tentpole claim: transfer cost is O(1) in graph size."""
        small = _frozen(nodes=100)
        large = _frozen(nodes=4000)
        raw_small = len(pickle.dumps(small))
        raw_large = len(pickle.dumps(large))
        assert raw_large > raw_small * 10  # raw pickling scales with edges
        with SharedGraphRegistry() as registry:
            handle_small = len(pickle.dumps(registry.share(small)))
            handle_large = len(pickle.dumps(registry.share(large)))
        assert handle_large <= handle_small + 8  # handles do not
        assert handle_large < 512

    def test_same_process_attach_is_memoised(self):
        frozen = _frozen()
        with SharedGraphRegistry() as registry:
            shared = registry.share(frozen)
            clone = pickle.loads(pickle.dumps(shared))
            again = pickle.loads(pickle.dumps(shared))
            # One mapping per topology per process: lazy caches are shared.
            assert clone is again
            assert clone.degree_sequence() == frozen.degree_sequence()

    def test_attach_after_unlink_raises_graph_error(self):
        frozen = _frozen()
        registry = SharedGraphRegistry()
        shared = registry.share(frozen)
        handle = shared.handle
        registry.close()
        with pytest.raises(GraphError):
            attach_shared_graph(handle)


class TestSegmentLifecycle:
    def test_close_unlinks_every_segment(self):
        before = _repro_segments()
        registry = SharedGraphRegistry()
        registry.share(_frozen(seed=11))
        registry.share(_frozen(seed=12))
        if DEV_SHM.is_dir():
            assert len(_repro_segments() - before) > 0
        registry.close()
        assert _repro_segments() == before

    def test_close_is_idempotent(self):
        registry = SharedGraphRegistry()
        registry.share(_frozen())
        registry.close()
        registry.close()

    def test_executor_close_reclaims_segments(self):
        before = _repro_segments()
        executor = ParallelExecutor(jobs=2)
        frozen = _frozen()
        results = executor.run([
            Task(fn=_degree_sum, args=(frozen,), key="degsum"),
            Task(fn=_neighbor_signature, args=(frozen, 0), key="nbr"),
        ])
        assert results[0] == _degree_sum(frozen)
        assert results[1] == _neighbor_signature(frozen, 0)
        executor.close()
        assert _repro_segments() == before


class TestExecutorHandoff:
    def test_parallel_results_identical_to_serial(self):
        frozen = _frozen(nodes=300)
        expected = [_degree_sum(frozen)] + [
            _neighbor_signature(frozen, node) for node in range(10)
        ]
        tasks = [Task(fn=_degree_sum, args=(frozen,), key="degsum")] + [
            Task(fn=_neighbor_signature, args=(frozen, node), key=f"n{node}")
            for node in range(10)
        ]
        with ParallelExecutor(jobs=2) as executor:
            assert executor.run(tasks) == expected

    def test_share_graphs_false_still_matches(self):
        frozen = _frozen(nodes=150)
        task = Task(fn=_degree_sum, args=(frozen,), key="degsum")
        with ParallelExecutor(jobs=2, share_graphs=False) as executor:
            assert executor.run([task]) == [_degree_sum(frozen)]


class TestShareGraphArguments:
    def test_rewrites_nested_containers(self):
        frozen = _frozen()
        with SharedGraphRegistry() as registry:
            value = {"graphs": [frozen, 3], "other": (1, frozen)}
            rewritten = share_graph_arguments(value, registry)
            assert isinstance(rewritten["graphs"][0], SharedCSRGraph)
            assert isinstance(rewritten["other"][1], SharedCSRGraph)
            assert rewritten["graphs"][1] == 3

    def test_identity_preserved_when_nothing_to_share(self):
        value = {"a": [1, 2], "b": (3, "x")}
        with SharedGraphRegistry() as registry:
            assert share_graph_arguments(value, registry) is value

    def test_mutable_graphs_are_left_alone(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        with SharedGraphRegistry() as registry:
            assert share_graph_arguments(graph, registry) is graph


class TestTaskMapArguments:
    def test_returns_self_when_unchanged(self):
        task = Task(fn=_degree_sum, args=(1,), key="k")
        assert task.map_arguments(lambda value: value) is task

    def test_rewrites_args_and_kwargs(self):
        task = Task(fn=_degree_sum, args=(1,), kwargs={"x": 2}, key="k")
        doubled = task.map_arguments(
            lambda value: value * 2 if isinstance(value, int) else value
        )
        assert doubled is not task
        assert doubled.args == (2,)
        assert doubled.kwargs == {"x": 4}
        assert doubled.key == "k"
        assert doubled.fn is task.fn
