"""Unit tests for the search-algorithm registry."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.search.base import SearchAlgorithm
from repro.search.flooding import FloodingSearch
from repro.search.registry import (
    SEARCH_ALGORITHMS,
    available_search_algorithms,
    create_search_algorithm,
    register_search_algorithm,
)


class TestRegistry:
    def test_paper_algorithms_present(self):
        names = available_search_algorithms()
        assert {"fl", "nf", "rw"} <= set(names)

    def test_aliases_resolve_to_same_class(self):
        assert SEARCH_ALGORITHMS["fl"] is SEARCH_ALGORITHMS["flooding"]
        assert SEARCH_ALGORITHMS["rw"] is SEARCH_ALGORITHMS["random_walk"]

    def test_create_with_parameters(self):
        nf = create_search_algorithm("nf", k_min=3)
        assert nf.algorithm_name == "nf"
        assert nf.k_min == 3

    def test_create_case_insensitive(self):
        assert create_search_algorithm("FL").algorithm_name == "fl"

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            create_search_algorithm("dht-lookup")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_search_algorithm("fl", FloodingSearch)

    def test_register_non_search_class_rejected(self):
        with pytest.raises(ConfigurationError):
            register_search_algorithm("thing", dict)  # type: ignore[arg-type]

    def test_register_custom_algorithm(self):
        class ProbeSearch(FloodingSearch):
            algorithm_name = "probe"

        try:
            register_search_algorithm("probe", ProbeSearch)
            assert create_search_algorithm("probe").algorithm_name == "probe"
        finally:
            SEARCH_ALGORITHMS.pop("probe", None)

    def test_all_registered_are_search_algorithms(self):
        assert all(issubclass(cls, SearchAlgorithm) for cls in SEARCH_ALGORITHMS.values())
