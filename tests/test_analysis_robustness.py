"""Unit tests for failure/attack robustness analysis."""

from __future__ import annotations

import pytest

from repro.analysis.robustness import attack_robustness, failure_robustness
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.generators.pa import generate_pa


class TestRemovalCurves:
    def test_curves_start_at_full_graph(self, pa_graph_small):
        failure = failure_robustness(pa_graph_small, max_removed_fraction=0.2, steps=4, rng=1)
        attack = attack_robustness(pa_graph_small, max_removed_fraction=0.2, steps=4)
        assert failure.removed_fractions[0] == 0.0
        assert failure.giant_component_fractions[0] == pytest.approx(1.0)
        assert attack.giant_component_fractions[0] == pytest.approx(1.0)

    def test_giant_component_never_grows(self, pa_graph_small):
        curve = failure_robustness(pa_graph_small, max_removed_fraction=0.4, steps=5, rng=2)
        values = curve.giant_component_fractions
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_original_graph_untouched(self, pa_graph_small):
        nodes_before = pa_graph_small.number_of_nodes
        failure_robustness(pa_graph_small, max_removed_fraction=0.3, steps=3, rng=3)
        assert pa_graph_small.number_of_nodes == nodes_before

    def test_attack_hits_harder_than_failure_on_scale_free(self):
        """The 'robust yet fragile' property (paper §III)."""
        graph = generate_pa(800, stubs=1, hard_cutoff=None, seed=5)
        failure = failure_robustness(graph, max_removed_fraction=0.25, steps=5, rng=6)
        attack = attack_robustness(graph, max_removed_fraction=0.25, steps=5)
        assert attack.giant_component_fractions[-1] < failure.giant_component_fractions[-1]

    def test_cutoff_narrows_attack_failure_gap(self):
        bounded = generate_pa(800, stubs=2, hard_cutoff=8, seed=7)
        unbounded = generate_pa(800, stubs=2, hard_cutoff=None, seed=7)

        def gap(graph):
            failure = failure_robustness(graph, max_removed_fraction=0.25, steps=4, rng=8)
            attack = attack_robustness(graph, max_removed_fraction=0.25, steps=4)
            return failure.giant_component_fractions[-1] - attack.giant_component_fractions[-1]

        assert gap(bounded) <= gap(unbounded) + 0.05

    def test_non_adaptive_attack_supported(self, pa_graph_small):
        curve = attack_robustness(
            pa_graph_small, max_removed_fraction=0.2, steps=3, adaptive=False
        )
        assert curve.metadata["adaptive"] is False

    def test_strategies_recorded(self, pa_graph_small):
        assert failure_robustness(pa_graph_small, steps=2, rng=1).strategy == "failure"
        assert attack_robustness(pa_graph_small, steps=2).strategy == "attack"


class TestRemovalResultAPI:
    def test_fraction_at_and_critical_fraction(self, pa_graph_small):
        curve = attack_robustness(pa_graph_small, max_removed_fraction=0.5, steps=5)
        assert 0.0 <= curve.fraction_at(0.0) <= 1.0
        assert 0.0 < curve.critical_fraction(threshold=0.0001) <= 1.0

    def test_invalid_fraction_rejected(self, pa_graph_small):
        with pytest.raises(AnalysisError):
            failure_robustness(pa_graph_small, max_removed_fraction=0.0)
        with pytest.raises(AnalysisError):
            attack_robustness(pa_graph_small, max_removed_fraction=1.5)

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            failure_robustness(Graph(), rng=1)
