"""Shared fixtures for the test-suite.

Graph fixtures are deliberately small (tens to a few hundred nodes): every
algorithmic property the paper relies on — cutoff enforcement, power-law
shape, search monotonicity — is already observable at that size, and the
whole suite stays fast enough to run on every change.
"""

from __future__ import annotations

import pytest

from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.experiments.runner import ExperimentScale
from repro.generators.cm import generate_cm
from repro.generators.pa import generate_pa


@pytest.fixture
def rng() -> RandomSource:
    """A seeded random source (fresh per test)."""
    return RandomSource(seed=12345)


@pytest.fixture
def path_graph() -> Graph:
    """A 5-node path: 0 - 1 - 2 - 3 - 4."""
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def star_graph() -> Graph:
    """A 6-node star with node 0 at the center."""
    return Graph.from_edges(6, [(0, i) for i in range(1, 6)])


@pytest.fixture
def two_component_graph() -> Graph:
    """Two disjoint triangles: {0,1,2} and {3,4,5}."""
    return Graph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])


@pytest.fixture
def complete_graph() -> Graph:
    """The complete graph on 6 nodes."""
    return Graph.complete(6)


@pytest.fixture(scope="session")
def pa_graph_small() -> Graph:
    """A 400-node PA topology with m=2 and no cutoff (session-cached)."""
    return generate_pa(400, stubs=2, hard_cutoff=None, seed=101)


@pytest.fixture(scope="session")
def pa_graph_cutoff() -> Graph:
    """A 400-node PA topology with m=2 and kc=10 (session-cached)."""
    return generate_pa(400, stubs=2, hard_cutoff=10, seed=101)


@pytest.fixture(scope="session")
def cm_graph_small() -> Graph:
    """A 400-node CM topology, gamma=2.5, m=2, kc=20 (session-cached)."""
    return generate_cm(400, exponent=2.5, min_degree=2, hard_cutoff=20, seed=77)


@pytest.fixture(scope="session")
def smoke_scale() -> ExperimentScale:
    """The smallest experiment scale, shared by the harness tests."""
    return ExperimentScale.smoke()
