"""Unit tests for the bounded-BFS horizon helpers."""

from __future__ import annotations

import pytest

from repro.core.errors import NodeNotFoundError
from repro.core.graph import Graph
from repro.substrate.horizon import bfs_distances, bfs_horizon, nodes_within
from repro.substrate.mesh import MeshNetwork


class TestBFSDistances:
    def test_distances_on_path(self, path_graph):
        assert bfs_distances(path_graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_depth_truncates(self, path_graph):
        assert bfs_distances(path_graph, 0, max_depth=2) == {0: 0, 1: 1, 2: 2}

    def test_unreachable_nodes_absent(self, two_component_graph):
        distances = bfs_distances(two_component_graph, 0)
        assert set(distances) == {0, 1, 2}

    def test_missing_source_raises(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(path_graph, 77)

    def test_zero_depth(self, path_graph):
        assert bfs_distances(path_graph, 2, max_depth=0) == {2: 0}


class TestBFSHorizon:
    def test_horizon_excludes_source(self, path_graph):
        assert 0 not in bfs_horizon(path_graph, 0, 3)

    def test_horizon_depth_bound(self, path_graph):
        assert bfs_horizon(path_graph, 0, 2) == [1, 2]

    def test_eligible_filter(self, path_graph):
        horizon = bfs_horizon(path_graph, 0, 4, eligible={2, 4})
        assert horizon == [2, 4]

    def test_eligible_filter_does_not_block_traversal(self):
        """A non-eligible node can still relay the search to an eligible one."""
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        horizon = bfs_horizon(graph, 0, 3, eligible={3})
        assert horizon == [3]

    def test_sorted_by_distance(self):
        mesh = MeshNetwork(5, 5)
        graph = mesh.generate_graph()
        center = mesh.node_id(2, 2)
        horizon = bfs_horizon(graph, center, 2)
        distances = bfs_distances(graph, center, max_depth=2)
        assert [distances[node] for node in horizon] == sorted(
            distances[node] for node in horizon
        )


class TestNodesWithin:
    def test_union_of_neighborhoods(self, path_graph):
        covered = nodes_within(path_graph, [0, 4], 1)
        assert covered == {0, 1, 3, 4}

    def test_full_coverage_at_large_depth(self, path_graph):
        assert nodes_within(path_graph, [2], 10) == {0, 1, 2, 3, 4}
