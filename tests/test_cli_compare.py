"""``repro run --compare``: regression-diff a run against a stored baseline.

ROADMAP follow-up from PR 3, wired through
:mod:`repro.experiments.compare`: the CLI reloads a previously saved
result, diffs every shared series, prints (or embeds, with ``--json``)
the per-series deltas, and exits non-zero on a tolerance breach so CI can
gate on reproduction drift.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SPEC = json.dumps({
    "id": "cmp-spec",
    "title": "compare fixture",
    "topology": {"model": "pa", "stubs": 2, "hard_cutoff": 10},
    "label": "nf {kc}",
    "measurement": {"kind": "search-curve", "algorithm": "nf"},
})


@pytest.fixture()
def baseline(tmp_path, capsys):
    out_dir = tmp_path / "baseline"
    assert main([
        "run", "--inline", SPEC, "--scale", "smoke", "--out", str(out_dir),
    ]) == 0
    capsys.readouterr()
    return out_dir / "cmp-spec.json"


class TestCompare:
    def test_identical_run_passes_with_zero_tolerance(self, baseline, capsys):
        code = main([
            "run", "--inline", SPEC, "--scale", "smoke",
            "--compare", str(baseline), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        comparison = payload["comparison"]
        assert comparison["within_tolerance"] is True
        assert comparison["tolerance"] == 0.0
        assert comparison["series"][0]["max_relative_difference"] == 0.0
        assert comparison["series"][0]["identical_grid"] is True

    def test_drift_exits_nonzero_and_reports_delta(self, baseline, capsys):
        code = main([
            "run", "--inline", SPEC, "--scale", "smoke", "--seed", "424242",
            "--compare", str(baseline), "--json",
        ])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 3
        comparison = payload["comparison"]
        assert comparison["within_tolerance"] is False
        assert comparison["series"][0]["max_relative_difference"] > 0.0
        assert "drifted beyond tolerance" in captured.err

    def test_loose_tolerance_accepts_seed_noise(self, baseline, capsys):
        code = main([
            "run", "--inline", SPEC, "--scale", "smoke", "--seed", "424242",
            "--compare", str(baseline), "--tolerance", "10.0",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "compared against" in captured.out
        assert "ok" in captured.out

    def test_label_drift_fails_closed(self, baseline, capsys):
        # A run whose series labels no longer match the baseline has no
        # shared curves to diff — that must gate (exit 3), not pass
        # vacuously with an empty comparison.
        relabelled = json.loads(SPEC)
        relabelled["label"] = "renamed {kc}"
        code = main([
            "run", "--inline", json.dumps(relabelled), "--scale", "smoke",
            "--compare", str(baseline), "--json",
        ])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 3
        assert payload["comparison"]["within_tolerance"] is False
        assert payload["comparison"]["labels_match"] is False
        assert "series labels diverged" in captured.err

    def test_missing_baseline_is_an_actionable_error(self, tmp_path, capsys):
        code = main([
            "run", "--inline", SPEC, "--scale", "smoke",
            "--compare", str(tmp_path / "nope.json"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot load baseline" in captured.err

    def test_mismatched_experiment_ids_rejected(self, baseline, capsys):
        other = json.loads(SPEC)
        other["id"] = "different-id"
        code = main([
            "run", "--inline", json.dumps(other), "--scale", "smoke",
            "--compare", str(baseline),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "different experiments" in captured.err
