"""Unit tests for the discrete-event queue and protocol messages."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.simulation.events import EventQueue
from repro.simulation.messages import Message, Ping, Pong, Query, QueryHit, next_message_id


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        assert queue.run() == 3
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_schedule_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append("first"))
        queue.schedule(1.0, lambda: fired.append("second"))
        queue.run()
        assert fired == ["first", "second"]

    def test_now_advances(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run()
        assert queue.now == 5.0

    def test_schedule_in_uses_relative_delay(self):
        queue = EventQueue()
        times = []
        queue.schedule(2.0, lambda: queue.schedule_in(3.0, lambda: times.append(queue.now)))
        queue.run()
        assert times == [5.0]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(4.0, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(10.0, lambda: fired.append(10))
        executed = queue.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert queue.pending == 1
        assert queue.now == 5.0

    def test_max_events_limit(self):
        queue = EventQueue()
        for index in range(5):
            queue.schedule(float(index), lambda: None)
        assert queue.run(max_events=2) == 2
        assert queue.pending == 3

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("cancelled"))
        queue.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        queue.run()
        assert fired == ["kept"]

    def test_step_returns_none_when_empty(self):
        assert EventQueue().step() is None

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        assert queue.processed == 1


class TestMessages:
    def test_unique_ids(self):
        assert next_message_id() != next_message_id()

    def test_forwarded_decrements_ttl_and_increments_hops(self):
        query = Query(message_id=1, origin=0, ttl=3, keyword="x")
        forwarded = query.forwarded()
        assert forwarded.ttl == 2
        assert forwarded.hops == 1
        assert forwarded.keyword == "x"
        assert query.ttl == 3  # original untouched (frozen dataclass)

    def test_cannot_forward_expired(self):
        message = Message(message_id=1, origin=0, ttl=0)
        assert message.expired
        with pytest.raises(SimulationError):
            message.forwarded()

    def test_negative_ttl_rejected(self):
        with pytest.raises(SimulationError):
            Message(message_id=1, origin=0, ttl=-1)

    def test_ping_pong_fields(self):
        pong = Pong(message_id=2, origin=1, ttl=1, responder=5, responder_degree=7)
        assert pong.responder == 5
        assert pong.responder_degree == 7
        assert isinstance(pong, Message)
        assert isinstance(Ping(message_id=3, origin=0, ttl=2), Message)

    def test_query_hit_fields(self):
        hit = QueryHit(message_id=4, origin=2, ttl=3, responder=2, keyword="song", query_id=1)
        assert hit.query_id == 1
        assert hit.keyword == "song"
