"""Unit tests for the exception hierarchy and shared value objects."""

from __future__ import annotations

import pytest

from repro.core import errors
from repro.core.types import GraphStats


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError)

    def test_node_not_found_is_key_error(self):
        error = errors.NodeNotFoundError(7)
        assert isinstance(error, KeyError)
        assert error.node == 7
        assert "7" in str(error)

    def test_edge_not_found_records_endpoints(self):
        error = errors.EdgeNotFoundError(1, 2)
        assert (error.u, error.v) == (1, 2)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_cutoff_error_is_generation_error(self):
        assert issubclass(errors.CutoffError, errors.GenerationError)

    def test_catching_base_catches_subsystem_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.SearchError("boom")


class TestGraphStats:
    def test_as_dict_round_trip(self):
        stats = GraphStats(
            number_of_nodes=10,
            number_of_edges=20,
            min_degree=1,
            max_degree=9,
            mean_degree=4.0,
        )
        payload = stats.as_dict()
        assert payload["number_of_nodes"] == 10
        assert payload["mean_degree"] == 4.0
        assert set(payload) == {
            "number_of_nodes",
            "number_of_edges",
            "min_degree",
            "max_degree",
            "mean_degree",
        }

    def test_frozen(self):
        stats = GraphStats(1, 0, 0, 0, 0.0)
        with pytest.raises(AttributeError):
            stats.number_of_nodes = 5  # type: ignore[misc]
