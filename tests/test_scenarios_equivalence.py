"""Byte-identity pins: old direct figure code vs. the scenario-spec path.

Every built-in figure/table/ablation used to be a hand-written ``run``
function looping over its parameter grid through the ``figures._common``
helpers.  Those modules are now :class:`~repro.scenarios.ScenarioSpec`
instances compiled by :mod:`repro.scenarios.compile`.  The tests here
re-implement each original loop verbatim (the "legacy path", using the
still-supported ``_common`` helpers and public library APIs) and assert the
spec path reproduces it **byte-for-byte** at smoke scale — labels, values,
metadata, series order, everything.

Cross-engine pins ride along: for representative search figures the spec
path is also byte-identical between serial and ``--jobs 2`` execution and
between the ``adj`` and ``csr`` graph backends.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.cutoff import (
    empirical_cutoff,
    natural_cutoff_aiello,
    natural_cutoff_dorogovtsev,
)
from repro.analysis.paths import expected_diameter_class, path_length_statistics
from repro.analysis.robustness import attack_robustness, failure_robustness
from repro.engine.executor import ParallelExecutor
from repro.experiments.figures._common import (
    degree_distribution_series,
    exponent_vs_cutoff_series,
    flooding_series,
    messaging_series,
    normalized_flooding_series,
    random_walk_series,
)
from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import (
    ExperimentScale,
    average_curves,
    realization_seeds,
)
from repro.experiments.sweeps import format_label
from repro.generators.cm import generate_cm
from repro.generators.pa import generate_pa
from repro.generators.registry import GENERATORS
from repro.scenarios import builtin_scenarios, run_scenario


def _payload(result: ExperimentResult) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def _result(experiment_id, title, scale, notes="") -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id, title=title,
        parameters=scale.as_dict(), notes=notes,
    )


# --------------------------------------------------------------------------- #
# Legacy implementations: the figure modules' original loops, verbatim
# (smoke-scale branches only — the pinned comparison runs at smoke scale).
# --------------------------------------------------------------------------- #
def legacy_fig1(scale):
    result = _result("fig1", "", scale)
    stubs_values = [1, 2]
    for stubs in stubs_values:
        result.add(degree_distribution_series(
            "pa", label=f"P(k) {format_label(m=stubs, kc=None)}",
            scale=scale, stubs=stubs, hard_cutoff=None))
    for stubs in stubs_values:
        for cutoff in [10, 40]:
            result.add(degree_distribution_series(
                "pa", label=f"P(k) {format_label(m=stubs, kc=cutoff)}",
                scale=scale, stubs=stubs, hard_cutoff=cutoff))
    for stubs in stubs_values:
        result.add(exponent_vs_cutoff_series(
            "pa", label=f"gamma vs kc m={stubs}", scale=scale, stubs=stubs,
            cutoffs=[10, 30, 50]))
    return result


def legacy_fig2(scale):
    result = _result("fig2", "", scale)
    for exponent in (2.2, 3.0):
        for stubs in [1, 3]:
            for cutoff in [10, None]:
                result.add(degree_distribution_series(
                    "cm",
                    label=f"gamma={exponent}, {format_label(m=stubs, kc=cutoff)}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    exponent=exponent))
    return result


def legacy_fig3(scale):
    result = _result("fig3", "", scale)
    for stubs in [1]:
        for cutoff in [None, 10]:
            result.add(degree_distribution_series(
                "hapa", label=f"P(k) {format_label(m=stubs, kc=cutoff)}",
                scale=scale, stubs=stubs, hard_cutoff=cutoff))
    return result


def legacy_fig4(scale):
    result = _result("fig4", "", scale)
    for stubs in [1]:
        for cutoff in [10, None]:
            for tau_sub in [2, 4]:
                result.add(degree_distribution_series(
                    "dapa",
                    label=(f"P(k) {format_label(m=stubs, kc=cutoff)}, "
                           f"tau_sub={tau_sub}"),
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    tau_sub=tau_sub))
    for stubs in [1]:
        result.add(exponent_vs_cutoff_series(
            "dapa", label=f"gamma vs kc m={stubs}", scale=scale, stubs=stubs,
            cutoffs=[10, 40], tau_sub=4))
    return result


def legacy_fig6(scale):
    result = _result("fig6", "", scale)
    for model in ("pa", "hapa"):
        for stubs in [1, 3]:
            for cutoff in [10, None]:
                result.add(flooding_series(
                    model, label=f"{model} {format_label(m=stubs, kc=cutoff)}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff))
    return result


def legacy_fig7(scale):
    result = _result("fig7", "", scale)
    for exponent in (2.2, 3.0):
        for stubs in [1, 2]:
            for cutoff in [10, None]:
                result.add(flooding_series(
                    "cm",
                    label=f"gamma={exponent}, {format_label(m=stubs, kc=cutoff)}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    exponent=exponent))
    return result


def legacy_fig8(scale):
    result = _result("fig8", "", scale)
    for stubs in [1]:
        for cutoff in [10, None]:
            for tau_sub in [2, 4]:
                result.add(flooding_series(
                    "dapa",
                    label=f"{format_label(m=stubs, kc=cutoff)}, tau_sub={tau_sub}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    tau_sub=tau_sub))
    return result


def _legacy_global_models(result, scale, series_fn):
    for model in ("pa", "cm", "hapa"):
        for stubs in [1, 2]:
            for cutoff in [10, None]:
                result.add(series_fn(
                    model, label=f"{model} {format_label(m=stubs, kc=cutoff)}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    exponent=2.2 if model == "cm" else 3.0))
    return result


def legacy_fig9(scale):
    return _legacy_global_models(
        _result("fig9", "", scale), scale, normalized_flooding_series)


def legacy_fig10(scale):
    result = _result("fig10", "", scale)
    for stubs in [1]:
        for cutoff in [10, None]:
            for tau_sub in [2, 4]:
                result.add(normalized_flooding_series(
                    "dapa",
                    label=f"{format_label(m=stubs, kc=cutoff)}, tau_sub={tau_sub}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    tau_sub=tau_sub))
    return result


def legacy_fig11(scale):
    return _legacy_global_models(
        _result("fig11", "", scale), scale, random_walk_series)


def legacy_fig12(scale):
    result = _result("fig12", "", scale)
    for stubs in [1]:
        for cutoff in [10, None]:
            for tau_sub in [2, 4]:
                result.add(random_walk_series(
                    "dapa",
                    label=f"{format_label(m=stubs, kc=cutoff)}, tau_sub={tau_sub}",
                    scale=scale, stubs=stubs, hard_cutoff=cutoff,
                    tau_sub=tau_sub))
    return result


def legacy_messaging(scale):
    result = _result("messaging", "", scale)
    for stubs in [1, 2]:
        for cutoff in [10, None]:
            label_suffix = format_label(m=stubs, kc=cutoff)
            result.add(messaging_series(
                "pa", label=f"nf messages {label_suffix}", scale=scale,
                algorithm="nf", stubs=stubs, hard_cutoff=cutoff))
            result.add(normalized_flooding_series(
                "pa", label=f"nf hits {label_suffix}", scale=scale,
                stubs=stubs, hard_cutoff=cutoff))
            result.add(random_walk_series(
                "pa", label=f"rw hits {label_suffix}", scale=scale,
                stubs=stubs, hard_cutoff=cutoff))
    return result


def legacy_table1(scale):
    result = _result("table1", "", scale)
    rows = [
        ("cm gamma=2.5 m=2", "cm", 2.5, 2),
        ("pa gamma=3 m=2", "pa", 3.0, 2),
        ("pa gamma=3 m=1 (tree)", "pa", 3.0, 1),
        ("cm gamma=3.5 m=2", "cm", 3.5, 2),
    ]
    sizes = [200, 400]
    for label, model, exponent, stubs in rows:
        averages = []
        for size in sizes:
            per_realization = []
            for realization_seed in realization_seeds(scale, f"{label}:{size}"):
                if model == "pa":
                    graph = generate_pa(size, stubs=stubs, seed=realization_seed)
                else:
                    graph = generate_cm(size, exponent=exponent, min_degree=stubs,
                                        hard_cutoff=None, seed=realization_seed)
                per_realization.append(path_length_statistics(
                    graph, sample_size=min(size, 200), rng=realization_seed + 1
                ).average)
            averages.append(sum(per_realization) / len(per_realization))
        result.add(Series(
            label=label, x=list(sizes), y=averages,
            metadata={
                "model": model, "exponent": exponent, "stubs": stubs,
                "expected_class": expected_diameter_class(exponent, stubs),
                "ln_n": [math.log(size) for size in sizes],
                "lnln_n": [math.log(math.log(size)) for size in sizes],
            }))
    return result


def legacy_table2(scale):
    result = _result("table2", "", scale)
    expected = {"pa": "yes", "cm": "yes", "hapa": "partial", "dapa": "no"}
    score = {"yes": 2, "partial": 1, "no": 0}
    paper_models = [name for name in sorted(GENERATORS) if name in expected]
    for index, name in enumerate(paper_models):
        classification = GENERATORS[name].uses_global_information
        result.add(Series(
            label=name, x=[index], y=[score.get(classification, -1)],
            metadata={
                "classification": classification,
                "expected": expected[name],
                "matches_paper": expected[name] == classification,
            }))
    return result


def legacy_natural_cutoff(scale):
    result = _result("natural_cutoff", "", scale)
    sizes = [200, 800]
    for stubs in [1]:
        measured = []
        for size in sizes:
            per_realization = []
            for realization_seed in realization_seeds(scale, f"m{stubs}-N{size}"):
                graph = generate_pa(size, stubs=stubs, hard_cutoff=None,
                                    seed=realization_seed)
                per_realization.append(empirical_cutoff(graph))
            measured.append(sum(per_realization) / len(per_realization))
        result.add(Series(label=f"measured kmax m={stubs}", x=list(sizes),
                          y=measured, metadata={"stubs": stubs}))
        result.add(Series(
            label=f"dorogovtsev m={stubs} (m*sqrt(N))", x=list(sizes),
            y=[natural_cutoff_dorogovtsev(size, 3.0, stubs) for size in sizes],
            metadata={"stubs": stubs, "analytical": True}))
        result.add(Series(
            label=f"aiello m={stubs} (N^(1/3))", x=list(sizes),
            y=[natural_cutoff_aiello(size, 3.0) for size in sizes],
            metadata={"stubs": stubs, "analytical": True}))
    return result


def legacy_ablation_min_degree(scale):
    result = _result("ablation_min_degree", "", scale)
    stubs_values = [1, 2]
    reference_ttl = min(6, scale.flooding_max_ttl)
    penalties = []
    for stubs in stubs_values:
        unbounded = flooding_series(
            "pa", label=f"m={stubs}, no kc", scale=scale, stubs=stubs,
            hard_cutoff=None)
        bounded = flooding_series(
            "pa", label=f"m={stubs}, kc=10", scale=scale, stubs=stubs,
            hard_cutoff=10)
        result.add(unbounded)
        result.add(bounded)
        hits_unbounded = unbounded.y_at(reference_ttl)
        hits_bounded = max(1.0, float(bounded.y_at(reference_ttl)))
        penalties.append(float(hits_unbounded) / hits_bounded)
    result.add(Series(
        label="cutoff penalty ratio (no kc / kc=10)", x=list(stubs_values),
        y=penalties, metadata={"reference_ttl": reference_ttl}))
    return result


def legacy_ablation_robustness(scale):
    result = _result("ablation_robustness", "", scale)
    nodes = min(scale.search_nodes, 1500)
    steps, max_removed = 6, 0.3
    for cutoff in (None, 10):
        for strategy_name, runner in (("failure", failure_robustness),
                                      ("attack", attack_robustness)):
            curves, x_values = [], None
            for realization_seed in realization_seeds(
                scale, f"{strategy_name}-{cutoff}"
            ):
                graph = generate_pa(nodes, stubs=2, hard_cutoff=cutoff,
                                    seed=realization_seed)
                if strategy_name == "failure":
                    removal = runner(graph, max_removed_fraction=max_removed,
                                     steps=steps, rng=realization_seed + 13)
                else:
                    removal = runner(graph, max_removed_fraction=max_removed,
                                     steps=steps)
                curves.append(removal.giant_component_fractions)
                x_values = removal.removed_fractions
            result.add(Series(
                label=f"{strategy_name}, {format_label(kc=cutoff)}",
                x=[float(value) for value in (x_values or [])],
                y=average_curves(curves),
                metadata={"strategy": strategy_name, "hard_cutoff": cutoff,
                          "nodes": nodes}))
    return result


LEGACY_RUNNERS = {
    "fig1": legacy_fig1,
    "fig2": legacy_fig2,
    "fig3": legacy_fig3,
    "fig4": legacy_fig4,
    "table1": legacy_table1,
    "table2": legacy_table2,
    "fig6": legacy_fig6,
    "fig7": legacy_fig7,
    "fig8": legacy_fig8,
    "fig9": legacy_fig9,
    "fig10": legacy_fig10,
    "fig11": legacy_fig11,
    "fig12": legacy_fig12,
    "messaging": legacy_messaging,
    "natural_cutoff": legacy_natural_cutoff,
    "ablation_min_degree": legacy_ablation_min_degree,
    "ablation_robustness": legacy_ablation_robustness,
}


def test_every_builtin_is_a_scenario_spec():
    assert set(builtin_scenarios()) == set(LEGACY_RUNNERS)


@pytest.mark.parametrize("experiment_id", sorted(LEGACY_RUNNERS))
def test_spec_path_matches_legacy_path_byte_for_byte(experiment_id, smoke_scale):
    legacy = LEGACY_RUNNERS[experiment_id](smoke_scale)
    via_spec = run_experiment(experiment_id, scale=smoke_scale)
    # Titles/notes live in the spec now; the numeric payload is the pin.
    legacy.title, legacy.notes = via_spec.title, via_spec.notes
    assert _payload(legacy) == _payload(via_spec)


@pytest.mark.parametrize("experiment_id", ["fig6", "fig9"])
def test_spec_path_crosses_real_process_boundaries(experiment_id):
    """Genuine worker-pool identity: smoke uses ``realizations=1`` (single-
    task batches degrade to in-process execution), so this pin uses two
    realizations to actually pickle scenario tasks into worker processes."""
    import dataclasses

    scale = dataclasses.replace(ExperimentScale.smoke(), realizations=2)
    spec = builtin_scenarios()[experiment_id]
    serial = run_scenario(spec, scale=scale)
    with ParallelExecutor(jobs=2) as pool:
        parallel = run_scenario(spec, scale=scale, executor=pool)
    assert _payload(serial) == _payload(parallel)


@pytest.mark.parametrize("experiment_id", sorted(LEGACY_RUNNERS))
def test_spec_path_serial_parallel_and_backend_identity(experiment_id, smoke_scale):
    """Spec-path results are byte-identical across executors and backends.

    Together with the legacy-path pin above (serial, ``adj``), this closes
    the square for every builtin: old direct path == spec path under serial
    and ``--jobs 2`` execution, on both the ``adj`` and ``csr`` backends.
    """
    spec = builtin_scenarios()[experiment_id]
    serial = run_scenario(spec, scale=smoke_scale)
    with ParallelExecutor(jobs=2) as pool:
        parallel = run_scenario(spec, scale=smoke_scale, executor=pool)
        csr_parallel = run_scenario(
            spec, scale=smoke_scale, executor=pool, backend="csr"
        )
    csr = run_scenario(spec, scale=smoke_scale, backend="csr")
    assert _payload(serial) == _payload(parallel)
    assert _payload(serial) == _payload(csr)
    assert _payload(serial) == _payload(csr_parallel)
