"""Unit tests for the hop-and-attempt preferential-attachment generator."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.generators.hapa import HAPAGenerator, generate_hapa


class TestBasicProperties:
    def test_node_count_and_min_degree(self):
        graph = generate_hapa(200, stubs=2, hard_cutoff=15, seed=1)
        assert graph.number_of_nodes == 200
        assert graph.min_degree() >= 1

    def test_every_new_node_fills_its_stubs(self):
        graph = generate_hapa(150, stubs=2, hard_cutoff=20, seed=2)
        assert graph.min_degree() >= 2

    def test_reproducible(self):
        a = generate_hapa(120, stubs=1, hard_cutoff=10, seed=9)
        b = generate_hapa(120, stubs=1, hard_cutoff=10, seed=9)
        assert a == b

    def test_cutoff_respected(self):
        graph = generate_hapa(400, stubs=1, hard_cutoff=8, seed=3)
        assert graph.max_degree() <= 8


class TestStarFormation:
    def test_no_cutoff_creates_super_hubs(self):
        """Without a cutoff HAPA produces a star-like topology (paper Fig. 3a)."""
        graph = generate_hapa(500, stubs=1, hard_cutoff=None, seed=4)
        assert graph.max_degree() > 0.5 * graph.number_of_nodes

    def test_cutoff_destroys_the_star(self):
        bounded = generate_hapa(500, stubs=1, hard_cutoff=10, seed=4)
        assert bounded.max_degree() <= 10

    def test_super_hub_concentration_versus_pa(self):
        """HAPA's biggest hub should dwarf PA's at the same size (no cutoffs)."""
        from repro.generators.pa import generate_pa

        hapa = generate_hapa(400, stubs=1, hard_cutoff=None, seed=6)
        pa = generate_pa(400, stubs=1, hard_cutoff=None, seed=6)
        assert hapa.max_degree() > 2 * pa.max_degree()


class TestConfiguration:
    def test_cutoff_not_above_stubs_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_hapa(100, stubs=3, hard_cutoff=3, seed=1)

    def test_partial_global_information_flag(self):
        assert HAPAGenerator.uses_global_information == "partial"

    def test_metadata_reports_hops(self):
        generator = HAPAGenerator(150, stubs=1, hard_cutoff=10, seed=5)
        result = generator.generate()
        assert result.metadata["total_hops"] > 0
        assert result.metadata["unfilled_stubs"] == 0

    def test_fallback_bound_small_budget_still_terminates(self):
        graph = generate_hapa(100, stubs=2, hard_cutoff=6, seed=7, max_hops_per_stub=3)
        assert graph.number_of_nodes == 100
        assert graph.max_degree() <= 6

    def test_parameters_dict(self):
        generator = HAPAGenerator(100, stubs=2, hard_cutoff=12, seed=8)
        params = generator.parameters()
        assert params["model"] == "hapa"
        assert params["hard_cutoff"] == 12
