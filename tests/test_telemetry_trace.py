"""Tracing v2 tests: span trees, trace context, logs, and Prometheus.

The load-bearing guarantees:

* spans form a *tree* — parent linkage follows the ambient stack, worker
  subtrees merge back under the submitting thread's open span, and a
  parallel run's canonical tree is identical to the serial one;
* the request trace id crosses the process-pool pickle boundary by value
  and stamps every worker-side span node;
* structured log records carry the ambient trace/span ids at emit time,
  and the no-handler default stays a no-op;
* the Prometheus text exposition is well-formed (cumulative buckets,
  ``+Inf`` == ``_count``) — parsed with ``prometheus_client`` when that
  package is installed, checked against the golden format otherwise.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.engine.executor import ParallelExecutor, SerialExecutor, use_executor
from repro.engine.tasks import Task
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.telemetry.collector import (
    HISTOGRAM_BUCKETS,
    TRACE_SCHEMA_VERSION,
    TelemetryCollector,
    histogram_quantile,
    use_telemetry,
)
from repro.telemetry.logs import (
    JsonLinesHandler,
    MemoryHandler,
    get_logger,
    install_log_handler,
    use_log_handler,
)
from repro.telemetry.prometheus import CONTENT_TYPE, render_prometheus
from repro.telemetry.trace import (
    current_span_id,
    current_trace_id,
    new_trace_id,
    to_chrome_trace,
    use_trace_id,
)


# --------------------------------------------------------------------------- #
# Span-tree structure
# --------------------------------------------------------------------------- #
class TestSpanTree:
    def test_nesting_records_parent_ids(self):
        collector = TelemetryCollector()
        with collector.span("outer"):
            with collector.span("inner"):
                with collector.span("leaf"):
                    pass
            with collector.span("sibling"):
                pass
        nodes = {node["name"]: node for node in collector.export()["span_tree"]}
        assert nodes["outer"]["parent"] is None
        assert nodes["inner"]["parent"] == nodes["outer"]["id"]
        assert nodes["leaf"]["parent"] == nodes["inner"]["id"]
        assert nodes["sibling"]["parent"] == nodes["outer"]["id"]
        assert all(node["end"] >= node["start"] for node in nodes.values())

    def test_trace_id_inherited_from_ambient(self):
        collector = TelemetryCollector()
        trace_id = new_trace_id()
        with use_trace_id(trace_id):
            with collector.span("a"):
                assert current_trace_id() == trace_id
                with collector.span("b"):
                    pass
        assert [node["trace_id"] for node in collector.span_tree] == [
            trace_id,
            trace_id,
        ]

    def test_fresh_collector_roots_its_own_tree(self):
        # A span of a *different* collector must not become the parent —
        # that is what lets a worker-side collector start its own root
        # even when code runs serially under the parent's open spans.
        outer = TelemetryCollector()
        inner = TelemetryCollector()
        trace_id = new_trace_id()
        with use_trace_id(trace_id), outer.span("request"):
            with inner.span("worker-root"):
                pass
        (node,) = inner.span_tree
        assert node["parent"] is None
        assert node["trace_id"] == trace_id  # trace id crosses; parent does not

    def test_attrs_are_recorded_and_copied(self):
        collector = TelemetryCollector()
        attrs = {"spec_hash": "abc", "scale": "smoke"}
        with collector.span("scenario", attrs=attrs):
            pass
        attrs["mutated"] = True  # caller mutation after exit must not leak
        (node,) = collector.span_tree
        assert node["attrs"] == {"spec_hash": "abc", "scale": "smoke"}

    def test_aggregate_false_is_tree_only(self):
        collector = TelemetryCollector()
        with collector.span("task", attrs={"index": 0}, aggregate=False):
            pass
        assert "task" not in collector.export()["spans"]
        assert [node["name"] for node in collector.span_tree] == ["task"]

    def test_span_ids_restore_ambient_on_exit(self):
        collector = TelemetryCollector()
        assert current_span_id() is None
        with collector.span("a"):
            first = current_span_id()
            assert first is not None
        assert current_span_id() is None
        with collector.span("b"):
            assert current_span_id() != first
        assert current_span_id() is None


# --------------------------------------------------------------------------- #
# Serial vs parallel tree identity + trace-context pickling
# --------------------------------------------------------------------------- #
def _search_task(seed: int) -> Task:
    return Task(key=f"real[{seed}]", fn=_tiny_workload, args=(seed,))


def _tiny_workload(seed: int):
    """A realization-shaped workload (module-level: must pickle to workers)."""
    from repro.generators.pa import PreferentialAttachmentGenerator
    from repro.search.metrics import search_curve

    graph = PreferentialAttachmentGenerator(
        60, stubs=2, hard_cutoff=8, seed=seed
    ).generate_graph()
    curve = search_curve(
        graph, NormalizedFloodingSearch(k_min=2), [2], queries=3, rng=seed
    )
    return curve.mean_hits


def _traced_batch(executor, seeds, trace_id):
    collector = TelemetryCollector()
    tasks = [_search_task(seed) for seed in seeds]
    with use_telemetry(collector), use_trace_id(trace_id):
        with collector.span("batch"):
            with use_executor(executor):
                results = executor.run(tasks)
    return results, collector.export()


def _canonical_tree(export):
    """Reduce a span tree to (name, attrs, children) shape, order-free.

    Ids, timestamps, and thread ids differ between serial and parallel
    runs by construction; the tree *shape* must not.  ``kernel-compile``
    spans are excluded for the same once-per-process reason the counter
    comparison in ``test_telemetry.py`` documents.
    """
    nodes = [
        node
        for node in export["span_tree"]
        if not node["name"].startswith("kernel")
    ]
    ids = {node["id"] for node in nodes}
    children = {}
    roots = []
    for node in nodes:
        parent = node["parent"]
        if parent is None or parent not in ids:
            roots.append(node)
        else:
            children.setdefault(parent, []).append(node)

    def shape(node):
        shaped = {
            "name": node["name"],
            "attrs": node["attrs"],
            "children": sorted(
                (shape(child) for child in children.get(node["id"], [])),
                key=lambda s: json.dumps(s, sort_keys=True),
            ),
        }
        return shaped

    return sorted(
        (shape(root) for root in roots),
        key=lambda s: json.dumps(s, sort_keys=True),
    )


class TestSerialParallelIdentity:
    def test_parallel_tree_matches_serial(self):
        trace_id = new_trace_id()
        serial_results, serial_export = _traced_batch(
            SerialExecutor(), (31, 32, 33), trace_id
        )
        with ParallelExecutor(jobs=2) as parallel:
            parallel_results, parallel_export = _traced_batch(
                parallel, (31, 32, 33), trace_id
            )
        assert parallel_results == serial_results
        serial_tree = _canonical_tree(serial_export)
        parallel_tree = _canonical_tree(parallel_export)
        assert parallel_tree == serial_tree
        # The batch root holds one synthetic ``task`` span per realization.
        (root,) = serial_tree
        assert root["name"] == "batch"
        task_nodes = [c for c in root["children"] if c["name"] == "task"]
        assert sorted(node["attrs"]["index"] for node in task_nodes) == [0, 1, 2]

    def test_merged_ids_are_unique_and_parents_resolve(self):
        with ParallelExecutor(jobs=2) as parallel:
            _, export = _traced_batch(parallel, (41, 42, 43), new_trace_id())
        nodes = export["span_tree"]
        ids = [node["id"] for node in nodes]
        assert len(ids) == len(set(ids))
        known = set(ids)
        for node in nodes:
            assert node["parent"] is None or node["parent"] in known
            assert node["end"] >= node["start"]

    def test_trace_id_pickles_into_worker_spans(self):
        trace_id = new_trace_id()
        with ParallelExecutor(jobs=2) as parallel:
            _, export = _traced_batch(parallel, (51, 52), trace_id)
        # Every node — including those recorded inside pool worker
        # processes, where the ambient stack starts empty — carries the
        # request trace id that travelled by value with the task.
        workload = [
            node
            for node in export["span_tree"]
            if not node["name"].startswith("kernel")
        ]
        assert workload
        assert {node["trace_id"] for node in workload} == {trace_id}

    def test_export_round_trip_preserves_tree(self):
        _, export = _traced_batch(SerialExecutor(), (61,), new_trace_id())
        rebuilt = TelemetryCollector.from_dict(export)
        assert rebuilt.export() == export
        # New spans continue past the imported id sequence.
        with rebuilt.span("post-import"):
            pass
        ids = [node["id"] for node in rebuilt.span_tree]
        assert len(ids) == len(set(ids))


# --------------------------------------------------------------------------- #
# Chrome trace-event export
# --------------------------------------------------------------------------- #
class TestChromeTrace:
    def _export(self):
        collector = TelemetryCollector()
        with use_trace_id("cafecafecafecafe"):
            with collector.span("scenario", attrs={"scale": "smoke"}):
                with collector.span("series"):
                    pass
        collector.count("rng.rejections", 3)
        return collector.export()

    def test_complete_events_with_micro_timestamps(self):
        export = self._export()
        chrome = to_chrome_trace(export)
        events = chrome["traceEvents"]
        assert [event["name"] for event in events] == ["scenario", "series"]
        by_name = {event["name"]: event for event in events}
        nodes = {node["name"]: node for node in export["span_tree"]}
        for name, event in by_name.items():
            assert event["ph"] == "X"
            node = nodes[name]
            assert event["ts"] == pytest.approx(node["start"] * 1e6)
            assert event["dur"] == pytest.approx(
                (node["end"] - node["start"]) * 1e6
            )
            assert event["args"]["trace_id"] == "cafecafecafecafe"
        assert by_name["series"]["args"]["parent_id"] == nodes["scenario"]["id"]
        assert "parent_id" not in by_name["scenario"]["args"]
        assert by_name["scenario"]["args"]["scale"] == "smoke"

    def test_other_data_and_ordering(self):
        chrome = to_chrome_trace(self._export())
        assert chrome["otherData"]["schema"] == TRACE_SCHEMA_VERSION
        assert chrome["otherData"]["counters"] == {"rng.rejections": 3}
        stamps = [event["ts"] for event in chrome["traceEvents"]]
        assert stamps == sorted(stamps)
        json.dumps(chrome)  # the payload must be directly serialisable


# --------------------------------------------------------------------------- #
# Histogram quantiles
# --------------------------------------------------------------------------- #
class TestQuantiles:
    def test_uniform_values_interpolate_accurately(self):
        collector = TelemetryCollector()
        for value in range(1, 101):
            collector.observe("sizes", value)
        entry = collector.histograms["sizes"]
        # Uniform 1..100: the (50,100] bucket interpolates p95 exactly.
        assert histogram_quantile(entry, 0.95) == pytest.approx(95.0, rel=0.01)
        p50 = histogram_quantile(entry, 0.50)
        p99 = histogram_quantile(entry, 0.99)
        assert 25.0 <= p50 <= 75.0  # bucket-resolution bound
        assert p50 <= histogram_quantile(entry, 0.95) <= p99 <= 100.0

    def test_single_observation_clamps_to_value(self):
        collector = TelemetryCollector()
        collector.observe("latency", 0.0375)
        entry = collector.histograms["latency"]
        for q in (0.5, 0.95, 0.99):
            assert histogram_quantile(entry, q) == pytest.approx(0.0375)

    def test_bucketless_entry_returns_none(self):
        assert (
            histogram_quantile(
                {"count": 4, "total": 10.0, "min": 1.0, "max": 4.0}, 0.5
            )
            is None
        )

    def test_export_derives_percentiles(self):
        collector = TelemetryCollector()
        for value in (0.01, 0.02, 0.04):
            collector.observe("serve.request_seconds", value)
        entry = collector.export()["histograms"]["serve.request_seconds"]
        assert entry["p50"] <= entry["p95"] <= entry["p99"] <= entry["max"]
        assert sum(entry["buckets"]) == 3

    def test_summary_lines_include_percentiles(self):
        collector = TelemetryCollector()
        for value in (1.0, 2.0, 3.0):
            collector.observe("frontier", value)
        (line,) = [
            line for line in collector.summary_lines() if "frontier" in line
        ]
        assert "p50=" in line and "p95=" in line and "p99=" in line


# --------------------------------------------------------------------------- #
# Schema compatibility
# --------------------------------------------------------------------------- #
class TestSchemaCompat:
    V1_PAYLOAD = {
        "schema": 1,
        "spans": {"generate": {"count": 2, "seconds": 0.5}},
        "counters": {"store.hits": 3},
        "histograms": {"sizes": {"count": 4, "total": 10.0, "min": 1.0, "max": 4.0}},
        "tasks": [],
    }

    def test_v1_payload_loads(self):
        collector = TelemetryCollector.from_dict(self.V1_PAYLOAD)
        export = collector.export()
        assert export["schema"] == TRACE_SCHEMA_VERSION
        assert export["span_tree"] == []
        entry = export["histograms"]["sizes"]
        assert entry["count"] == 4
        assert "buckets" not in entry and "p50" not in entry

    def test_v1_histogram_degrades_to_prometheus_summary(self):
        collector = TelemetryCollector.from_dict(self.V1_PAYLOAD)
        text = render_prometheus(collector.export())
        assert "# TYPE sizes summary" in text
        assert "sizes_count 4" in text
        assert "sizes_bucket" not in text


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #
class TestStructuredLogs:
    def test_no_handler_is_a_noop(self):
        assert install_log_handler(None) is None  # default state
        get_logger("repro.test").info("nothing-listens", detail=1)

    def test_memory_handler_captures_record_shape(self):
        handler = MemoryHandler()
        with use_log_handler(handler):
            get_logger("repro.test").warning("something", count=7, key="a")
        (record,) = handler.records
        assert record["level"] == "warning"
        assert record["logger"] == "repro.test"
        assert record["event"] == "something"
        assert record["count"] == 7 and record["key"] == "a"
        assert record["ts"] > 0
        assert record["trace_id"] is None and record["span_id"] is None

    def test_records_stamp_ambient_trace_and_span(self):
        handler = MemoryHandler()
        collector = TelemetryCollector()
        trace_id = new_trace_id()
        with use_log_handler(handler), use_trace_id(trace_id):
            with collector.span("request"):
                get_logger("repro.test").info("inside")
        (record,) = handler.records
        assert record["trace_id"] == trace_id
        assert record["span_id"] == collector.span_tree[0]["id"]

    def test_json_lines_handler_writes_parseable_lines(self):
        stream = io.StringIO()
        with use_log_handler(JsonLinesHandler(stream)):
            get_logger("a").info("one", n=1)
            get_logger("b").error("two", n=2)
        lines = stream.getvalue().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [record["event"] for record in parsed] == ["one", "two"]
        assert parsed[1]["level"] == "error"

    def test_json_lines_handler_survives_broken_stream(self):
        stream = io.StringIO()
        stream.close()
        with use_log_handler(JsonLinesHandler(stream)):
            get_logger("a").info("into-the-void")  # must not raise

    def test_use_log_handler_restores_previous(self):
        outer = MemoryHandler()
        with use_log_handler(outer):
            with use_log_handler(MemoryHandler()):
                pass
            get_logger("a").info("after-inner")
        assert [record["event"] for record in outer.records] == ["after-inner"]

    def test_get_logger_is_cached(self):
        assert get_logger("repro.same") is get_logger("repro.same")


# --------------------------------------------------------------------------- #
# Kernel fallback observability
# --------------------------------------------------------------------------- #
class TestKernelFallback:
    def test_fallback_emits_log_and_counter_once(self, monkeypatch):
        from repro.kernels import dispatch

        monkeypatch.setattr(dispatch, "_TIER_WARNINGS", set())
        handler = MemoryHandler()
        collector = TelemetryCollector()
        with use_log_handler(handler), use_telemetry(collector):
            with pytest.warns(RuntimeWarning, match="tier demoted"):
                dispatch._warn_tier("test-tier", "tier demoted: test")
            dispatch._warn_tier("test-tier", "tier demoted: test")  # muted
        (record,) = handler.records
        assert record["logger"] == "repro.kernels"
        assert record["event"] == "kernel-fallback"
        assert record["reason"] == "test-tier"
        assert collector.counters == {"kernels.fallback.test-tier": 1}


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
def _sample_export():
    collector = TelemetryCollector()
    collector.count("serve.requests", 5)
    collector.count("store.hits", 2)
    for value in (0.01, 0.02, 0.04):
        collector.observe("serve.request_seconds", value)
    with collector.span("generate"):
        pass
    return collector.export()


class TestPrometheusExposition:
    def test_counters_become_total_families(self):
        text = render_prometheus(_sample_export())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 5" in text
        assert "store_hits_total 2" in text

    def test_histogram_buckets_are_cumulative_and_inf_closes(self):
        text = render_prometheus(_sample_export())
        assert "# TYPE serve_request_seconds histogram" in text
        bucket_values = []
        for line in text.splitlines():
            if line.startswith("serve_request_seconds_bucket{"):
                bucket_values.append(int(line.rsplit(" ", 1)[1]))
        assert len(bucket_values) == len(HISTOGRAM_BUCKETS) + 1
        assert bucket_values == sorted(bucket_values)  # cumulative, monotone
        assert 'serve_request_seconds_bucket{le="+Inf"} 3' in text
        assert "serve_request_seconds_count 3" in text
        assert "serve_request_seconds_sum 0.07" in text

    def test_spans_and_gauges(self):
        text = render_prometheus(
            _sample_export(), gauges={"serve_inflight": 0, "serve_uptime_seconds": 1.5}
        )
        assert 'repro_span_calls_total{span="generate"} 1' in text
        assert 'repro_span_seconds_total{span="generate"}' in text
        assert "# TYPE serve_inflight gauge" in text
        assert "serve_inflight 0" in text
        assert "serve_uptime_seconds 1.5" in text

    def test_metric_names_are_sanitized(self):
        collector = TelemetryCollector()
        collector.count("weird-name.with~chars", 1)
        text = render_prometheus(collector.export())
        assert "weird_name_with_chars_total 1" in text

    def test_exposition_parses_with_client_or_matches_golden(self):
        text = render_prometheus(_sample_export(), gauges={"serve_inflight": 1})
        try:
            from prometheus_client.parser import text_string_to_metric_families
        except ImportError:
            # Golden-format fallback: every sample line a `# TYPE` family
            # declared above it, bucket labels well-formed.
            families = {}
            for line in text.splitlines():
                if line.startswith("# TYPE "):
                    _, _, name, kind = line.split(" ")
                    families[name] = kind
            assert families["serve_requests_total"] == "counter"
            assert families["serve_request_seconds"] == "histogram"
            assert families["serve_inflight"] == "gauge"
            for line in text.splitlines():
                if line.startswith("#") or not line:
                    continue
                name = line.split("{")[0].split(" ")[0]
                base = name
                for suffix in ("_bucket", "_sum", "_count"):
                    if name.endswith(suffix) and name[: -len(suffix)] in families:
                        base = name[: -len(suffix)]
                assert base in families
        else:
            families = {
                family.name: family
                for family in text_string_to_metric_families(text)
            }
            assert families["serve_requests"].type == "counter"
            histogram = families["serve_request_seconds"]
            assert histogram.type == "histogram"
            samples = {
                (s.name, s.labels.get("le")): s.value
                for s in histogram.samples
            }
            assert samples[("serve_request_seconds_bucket", "+Inf")] == 3
            assert samples[("serve_request_seconds_count", None)] == 3

    def test_content_type_advertises_text_format(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")
