"""Unit tests for degree-distribution analysis."""

from __future__ import annotations

import pytest

from repro.analysis.degree_distribution import (
    ccdf,
    degree_distribution,
    degree_fraction_at,
    degree_histogram,
    log_binned_distribution,
)
from repro.core.errors import AnalysisError
from repro.core.graph import Graph


class TestHistogramAndPMF:
    def test_histogram_from_sequence(self):
        assert degree_histogram([1, 1, 2, 3, 3, 3]) == {1: 2, 2: 1, 3: 3}

    def test_histogram_from_graph(self, star_graph):
        assert degree_histogram(star_graph) == {1: 5, 5: 1}

    def test_distribution_sums_to_one(self, pa_graph_cutoff):
        distribution = degree_distribution(pa_graph_cutoff)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_distribution_of_known_sequence(self):
        assert degree_distribution([1, 1, 2, 2]) == {1: 0.5, 2: 0.5}

    def test_distribution_keys_sorted(self):
        keys = list(degree_distribution([5, 1, 3, 1]).keys())
        assert keys == sorted(keys)

    def test_empty_input_rejected(self):
        with pytest.raises(AnalysisError):
            degree_distribution([])

    def test_negative_degree_rejected(self):
        with pytest.raises(AnalysisError):
            degree_histogram([1, -2])

    def test_fraction_at(self):
        assert degree_fraction_at([1, 1, 2, 10], 10) == 0.25
        assert degree_fraction_at([1, 1], 7) == 0.0


class TestCCDF:
    def test_simple_sequence(self):
        assert ccdf([1, 2, 2, 4]) == [(1, 1.0), (2, 0.75), (4, 0.25)]

    def test_first_point_is_one(self, pa_graph_small):
        points = ccdf(pa_graph_small)
        assert points[0][1] == pytest.approx(1.0)

    def test_monotone_decreasing(self, pa_graph_small):
        values = [p for _, p in ccdf(pa_graph_small)]
        assert all(b <= a for a, b in zip(values, values[1:]))


class TestLogBinning:
    def test_bin_centers_increase(self, pa_graph_small):
        points = log_binned_distribution(pa_graph_small, bins_per_decade=5)
        centers = [center for center, _ in points]
        assert centers == sorted(centers)

    def test_single_degree_value(self):
        points = log_binned_distribution([3, 3, 3])
        assert points == [(3.0, 1.0)]

    def test_densities_positive(self, cm_graph_small):
        points = log_binned_distribution(cm_graph_small)
        assert all(density > 0 for _, density in points)

    def test_invalid_bins(self):
        with pytest.raises(AnalysisError):
            log_binned_distribution([1, 2, 3], bins_per_decade=0)

    def test_all_zero_degrees_rejected(self):
        with pytest.raises(AnalysisError):
            log_binned_distribution([0, 0, 0])

    def test_graph_input(self):
        graph = Graph.complete(4)
        points = log_binned_distribution(graph)
        assert len(points) == 1
