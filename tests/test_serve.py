"""Tests for the scenario service (:mod:`repro.serve`).

The load-bearing guarantees:

* two concurrent identical specs trigger exactly **one** computation
  (in-flight dedup) and both callers get identical responses;
* a warm request (result already in the store) is answered from disk —
  including across a service restart — byte-identical to a direct
  :func:`run_scenario_cached` call;
* malformed specs surface as :class:`ScenarioError` → HTTP 400 with the
  validation detail, and never touch the executor;
* the NDJSON event stream carries the structured progress events.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.core.errors import ScenarioError
from repro.engine.executor import ParallelExecutor
from repro.engine.store import ResultStore
from repro.scenarios.compile import run_scenario_cached
from repro.scenarios.spec import ScenarioSpec
from repro.serve import EventLog, ScenarioService, ServeHTTP
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.logs import MemoryHandler, use_log_handler

SPEC = {
    "id": "serve-test",
    "title": "Serve test scenario",
    "topology": {"model": "pa", "stubs": 2, "hard_cutoff": 10},
    "label": "dd",
    "measurement": {"kind": "degree-distribution"},
}
SPEC_JSON = json.dumps(SPEC)


def _service(tmp_path=None, **kwargs) -> ScenarioService:
    kwargs.setdefault("scale", "smoke")
    kwargs.setdefault("telemetry", TelemetryCollector())
    if tmp_path is not None:
        kwargs.setdefault("store", ResultStore(tmp_path / "cache"))
    return ScenarioService(**kwargs)


def _counter(service: ScenarioService, name: str) -> float:
    return service.telemetry.export()["counters"].get(name, 0)


class TestEventLog:
    def test_append_stamps_sequence_numbers(self):
        log = EventLog()
        log.append({"event": "a"})
        log.append({"event": "b"})
        assert [e["seq"] for e in log.snapshot()] == [0, 1]

    def test_after_returns_only_new_events_and_closed_flag(self):
        log = EventLog()
        log.append({"event": "a"})
        events, closed = log.after(0, timeout=0)
        assert [e["event"] for e in events] == ["a"]
        assert not closed
        events, closed = log.after(1, timeout=0)
        assert events == [] and not closed
        log.close()
        events, closed = log.after(1, timeout=0)
        assert events == [] and closed

    def test_after_wakes_blocked_consumer(self):
        log = EventLog()
        seen = []

        def consume():
            events, _ = log.after(0, timeout=5.0)
            seen.extend(events)

        thread = threading.Thread(target=consume)
        thread.start()
        log.append({"event": "late"})
        thread.join(timeout=5.0)
        assert [e["event"] for e in seen] == ["late"]


class TestWarmAndCold:
    def test_cold_then_warm(self, tmp_path):
        service = _service(tmp_path)
        try:
            cold = service.submit(SPEC_JSON)
            assert cold["status"] == "done"
            assert cold["from_cache"] is False
            warm = service.submit(SPEC_JSON)
            assert warm["status"] == "done"
            assert warm["from_cache"] is True
            assert warm["result"] == cold["result"]
            assert _counter(service, "serve.cold_misses") == 1
            assert _counter(service, "serve.warm_hits") == 1
            assert _counter(service, "serve.computations") == 1
        finally:
            service.close()

    def test_restarted_service_serves_from_disk(self, tmp_path):
        first = _service(tmp_path)
        try:
            cold = first.submit(SPEC_JSON)
        finally:
            first.close()
        second = _service(tmp_path)
        try:
            warm = second.submit(SPEC_JSON)
            assert warm["from_cache"] is True
            assert warm["result"] == cold["result"]
            assert _counter(second, "serve.computations") == 0
        finally:
            second.close()

    def test_result_identical_to_direct_run(self, tmp_path):
        service = _service(tmp_path)
        try:
            served = service.submit(SPEC_JSON)
        finally:
            service.close()
        spec = ScenarioSpec.from_json(SPEC_JSON)
        direct, _ = run_scenario_cached(spec, scale=service.default_scale)
        assert json.dumps(served["result"], sort_keys=True) == json.dumps(
            direct.as_dict(), sort_keys=True
        )

    def test_store_key_includes_spec_hash(self, tmp_path):
        """Two different specs with the same id do not collide."""
        service = _service(tmp_path)
        other = dict(SPEC, topology={"model": "pa", "stubs": 3, "hard_cutoff": 10})
        try:
            first = service.submit(SPEC_JSON)
            second = service.submit(json.dumps(other))
            assert second["from_cache"] is False
            assert second["spec_hash"] != first["spec_hash"]
            assert _counter(service, "serve.computations") == 2
        finally:
            service.close()

    def test_warm_lookup_uses_shared_cache_extra(self, tmp_path):
        """A result persisted by ``repro run`` is warm for the service."""
        store = ResultStore(tmp_path / "cache")
        spec = ScenarioSpec.from_json(SPEC_JSON)
        service = _service(tmp_path)
        try:
            run_scenario_cached(spec, scale=service.default_scale, store=store)
            warm = service.submit(SPEC_JSON)
            assert warm["from_cache"] is True
            assert _counter(service, "serve.computations") == 0
        finally:
            service.close()


class TestInFlightDedup:
    def test_concurrent_identical_specs_compute_once(self, tmp_path, monkeypatch):
        """Two concurrent identical submits → one computation, equal bodies."""
        release = threading.Event()
        running = threading.Event()
        calls = []
        real = run_scenario_cached

        def blocking(spec, **kwargs):
            calls.append(spec.spec_hash())
            running.set()
            assert release.wait(timeout=10.0), "test deadlock"
            return real(spec, **kwargs)

        monkeypatch.setattr(
            "repro.serve.service.run_scenario_cached", blocking
        )
        service = _service(tmp_path, workers=4)
        responses = []
        try:
            threads = [
                threading.Thread(
                    target=lambda: responses.append(service.submit(SPEC_JSON))
                )
                for _ in range(2)
            ]
            threads[0].start()
            assert running.wait(timeout=10.0)  # first request is in flight
            threads[1].start()
            # The second submit must dedup against the first before the
            # computation is allowed to finish.
            deadline = 50
            while _counter(service, "serve.dedup_hits") < 1 and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            release.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert len(responses) == 2
            assert responses[0] == responses[1]  # byte-identical bodies
            assert len(calls) == 1  # exactly one computation ran
            assert _counter(service, "serve.cold_misses") == 1
            assert _counter(service, "serve.dedup_hits") == 1
        finally:
            release.set()
            service.close()

    def test_different_seeds_do_not_dedup(self, tmp_path):
        service = _service(tmp_path)
        try:
            first = service.submit(SPEC_JSON, seed=1)
            second = service.submit(SPEC_JSON, seed=2)
            assert first["seed"] != second["seed"]
            assert _counter(service, "serve.dedup_hits") == 0
            assert _counter(service, "serve.computations") == 2
        finally:
            service.close()


class TestErrors:
    def test_malformed_json_raises_scenario_error(self):
        service = _service()
        try:
            with pytest.raises(ScenarioError, match="not valid JSON"):
                service.submit("{not json")
            assert _counter(service, "serve.errors") == 1
        finally:
            service.close()

    def test_invalid_spec_raises_with_detail(self):
        service = _service()
        bad = dict(SPEC, topology={"model": "no-such-model"})
        try:
            with pytest.raises(ScenarioError, match="no-such-model"):
                service.submit(json.dumps(bad))
        finally:
            service.close()

    def test_unknown_scale_raises(self):
        service = _service()
        try:
            with pytest.raises(Exception):
                service.submit(SPEC_JSON, scale="galactic")
        finally:
            service.close()


class TestAsyncSubmit:
    def test_wait_false_returns_queued_then_resolves(self, tmp_path):
        service = _service(tmp_path)
        try:
            response = service.submit(SPEC_JSON, wait=False)
            assert response["status"] in ("queued", "running", "done")
            job = service.job_for(response["spec_hash"])
            assert job is not None
            job.future.result(timeout=30.0)
            assert job.status == "done"
            events = [e["event"] for e in job.events.snapshot()]
            assert events[0] == "accepted"
            assert "completed" in events
            assert job.events.closed
        finally:
            service.close()

    def test_progress_events_are_structured(self, tmp_path):
        service = _service(tmp_path)
        try:
            response = service.submit(SPEC_JSON)
            job = service.job_for(response["spec_hash"])
            kinds = {e["event"] for e in job.events.snapshot()}
            # ProgressReporter events funnel into the same log as the
            # service lifecycle events.
            assert {"accepted", "running", "completed"} <= kinds
            assert "experiment-started" in kinds
            for event in job.events.snapshot():
                json.dumps(event)  # every event is JSON-serializable
        finally:
            service.close()


class _HTTPFixture:
    """A ServeHTTP instance running on an event loop in a daemon thread."""

    def __init__(self, service: ScenarioService, access_log: bool = True) -> None:
        self.service = service
        self.http = ServeHTTP(service, port=0, access_log=access_log)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.http.start(), self.loop).result(10)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def request(self, method: str, path: str, body=None, headers=None):
        status, _headers, payload = self.request_full(method, path, body, headers)
        return status, payload

    def request_full(self, method: str, path: str, body=None, headers=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.http.port, timeout=60
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(self.http.close(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.service.close()


@pytest.fixture()
def served(tmp_path):
    fixture = _HTTPFixture(_service(tmp_path))
    yield fixture
    fixture.close()


class TestHTTP:
    def test_healthz(self, served):
        status, body = served.request("GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_post_cold_then_warm(self, served):
        status, body = served.request("POST", "/scenarios", SPEC_JSON)
        assert status == 200
        cold = json.loads(body)
        assert cold["status"] == "done" and cold["from_cache"] is False
        status, body = served.request("POST", "/scenarios", SPEC_JSON)
        warm = json.loads(body)
        assert status == 200
        assert warm["from_cache"] is True
        assert warm["result"] == cold["result"]

    def test_malformed_spec_is_400_with_detail(self, served):
        status, body = served.request("POST", "/scenarios", "{not json")
        assert status == 400
        payload = json.loads(body)
        assert payload["error"] == "ScenarioError"
        assert "JSON" in payload["detail"]

    def test_invalid_field_is_400_with_detail(self, served):
        bad = json.dumps(dict(SPEC, bogus_field=1))
        status, body = served.request("POST", "/scenarios", bad)
        assert status == 400
        assert "bogus_field" in json.loads(body)["detail"]

    def test_status_and_events_routes(self, served):
        _, body = served.request("POST", "/scenarios", SPEC_JSON)
        spec_hash = json.loads(body)["spec_hash"]
        status, body = served.request("GET", f"/scenarios/{spec_hash}")
        assert status == 200
        assert json.loads(body)["status"] == "done"
        status, body = served.request("GET", f"/scenarios/{spec_hash}/events")
        assert status == 200
        events = [json.loads(line) for line in body.decode().splitlines()]
        assert events  # NDJSON: one JSON object per line
        assert events[0]["event"] == "accepted"
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_unknown_routes(self, served):
        assert served.request("GET", "/nope")[0] == 404
        assert served.request("GET", "/scenarios/deadbeef")[0] == 404
        assert served.request("GET", "/scenarios")[0] == 405

    def test_metrics_counts_requests(self, served):
        served.request("POST", "/scenarios", SPEC_JSON)
        served.request("POST", "/scenarios", SPEC_JSON)
        status, body = served.request("GET", "/metrics")
        assert status == 200
        metrics = json.loads(body)
        counters = metrics["counters"]
        assert counters["serve.requests"] == 2
        assert counters.get("serve.warm_hits", 0) + counters.get(
            "serve.dedup_hits", 0
        ) >= 1
        assert "serve.request_seconds" in metrics["histograms"]
        assert metrics["store"] is not None


def _wait_for(predicate, timeout: float = 5.0):
    """Poll until ``predicate()`` is truthy (access-log records are emitted
    after the response bytes, so the client can observe the body first)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.01)
    return predicate()


class TestTraceCorrelation:
    def test_trace_id_links_response_stream_and_access_log(self, tmp_path):
        handler = MemoryHandler()
        with use_log_handler(handler):
            fixture = _HTTPFixture(_service(tmp_path))
            try:
                status, body = fixture.request("POST", "/scenarios", SPEC_JSON)
                assert status == 200
                cold = json.loads(body)
                trace_id = cold["trace_id"]
                assert trace_id
                # The job status route reports the same trace id...
                _, body = fixture.request(
                    "GET", f"/scenarios/{cold['spec_hash']}"
                )
                assert json.loads(body)["trace_id"] == trace_id
                # ...and every NDJSON event line carries it.
                _, body = fixture.request(
                    "GET", f"/scenarios/{cold['spec_hash']}/events"
                )
                events = [
                    json.loads(line) for line in body.decode().splitlines()
                ]
                assert events
                assert {event["trace_id"] for event in events} == {trace_id}
            finally:
                fixture.close()

        def access_records():
            return [
                record
                for record in handler.records
                if record["event"] == "http.access"
            ]

        access = _wait_for(lambda: len(access_records()) >= 3 and access_records())
        posts = [r for r in access if r["method"] == "POST"]
        assert posts and posts[0]["status"] == 200
        assert posts[0]["trace_id"] == trace_id
        streams = [r for r in access if r["path"].endswith("/events")]
        assert streams and streams[0]["trace_id"] == trace_id
        assert all("duration_ms" in r for r in access)
        # Job lifecycle records correlate through the same id.
        lifecycle = [
            record
            for record in handler.records
            if record["event"].startswith("job-")
        ]
        assert lifecycle
        assert {record["trace_id"] for record in lifecycle} == {trace_id}

    def test_quiet_mode_silences_access_log(self, tmp_path):
        handler = MemoryHandler()
        with use_log_handler(handler):
            fixture = _HTTPFixture(_service(tmp_path), access_log=False)
            try:
                status, _body = fixture.request("GET", "/healthz")
                assert status == 200
            finally:
                fixture.close()
        assert not [
            record
            for record in handler.records
            if record["event"] == "http.access"
        ]

    def test_warm_request_mints_its_own_trace_id(self, tmp_path):
        service = _service(tmp_path)
        try:
            cold = service.submit(SPEC_JSON)
            warm = service.submit(SPEC_JSON)
            assert warm["from_cache"] is True
            assert warm["trace_id"] and cold["trace_id"]
            assert warm["trace_id"] != cold["trace_id"]
        finally:
            service.close()

    def test_cold_request_builds_full_span_tree(self, tmp_path):
        # The acceptance flow: one cold request's trace reassembles into
        # serve.request -> scenario -> series -> task even when the
        # realization tasks ran in pool worker processes.
        executor = ParallelExecutor(jobs=2)
        service = _service(tmp_path, executor=executor)
        try:
            cold = service.submit(SPEC_JSON)
            trace_id = cold["trace_id"]
            export = service.telemetry.export()
        finally:
            service.close()
            executor.close()
        tree = export["span_tree"]
        by_id = {node["id"]: node for node in tree}
        tasks = [
            node
            for node in tree
            if node["name"] == "task" and node["trace_id"] == trace_id
        ]
        assert tasks
        chain = []
        node = tasks[0]
        while node is not None:
            chain.append(node["name"])
            assert node["trace_id"] == trace_id
            parent = node["parent"]
            node = by_id[parent] if parent is not None else None
        assert chain[0] == "task"
        assert chain[-1] == "serve.request"
        assert "scenario" in chain and "series" in chain
        request_node = by_id[
            [n["id"] for n in tree if n["name"] == "serve.request"][0]
        ]
        assert request_node["attrs"]["spec_hash"] == cold["spec_hash"]


class TestMetricsExposition:
    def test_prometheus_text_negotiated_by_accept(self, served):
        served.request("POST", "/scenarios", SPEC_JSON)
        status, headers, body = served.request_full(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_request_seconds histogram" in text
        count = int(
            [
                line
                for line in text.splitlines()
                if line.startswith("serve_request_seconds_count ")
            ][0].split()[1]
        )
        inf = [
            line
            for line in text.splitlines()
            if line.startswith('serve_request_seconds_bucket{le="+Inf"}')
        ]
        assert inf and int(inf[0].rsplit(" ", 1)[1]) == count >= 1
        assert "serve_uptime_seconds" in text
        assert "serve_inflight 0" in text

    def test_default_metrics_stay_json_with_percentiles(self, served):
        served.request("POST", "/scenarios", SPEC_JSON)
        status, headers, body = served.request_full("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        entry = json.loads(body)["histograms"]["serve.request_seconds"]
        assert entry["p50"] <= entry["p95"] <= entry["p99"]
        assert sum(entry["buckets"]) == entry["count"]
