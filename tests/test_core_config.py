"""Unit tests for the configuration dataclasses and their validation."""

from __future__ import annotations

import math

import pytest

from repro.core.config import (
    CMConfig,
    DAPAConfig,
    GRNConfig,
    HAPAConfig,
    MeshConfig,
    PAConfig,
    SearchConfig,
    TopologyConfig,
)
from repro.core.errors import ConfigurationError


class TestTopologyConfig:
    def test_valid_configuration(self):
        config = TopologyConfig(number_of_nodes=100, stubs=2, hard_cutoff=10)
        assert config.has_cutoff
        assert config.effective_cutoff() == 10

    def test_no_cutoff_effective_value_is_n(self):
        config = TopologyConfig(number_of_nodes=50, stubs=1)
        assert not config.has_cutoff
        assert config.effective_cutoff() == 50

    def test_too_few_nodes(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(number_of_nodes=1)

    def test_zero_stubs(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(number_of_nodes=10, stubs=0)

    def test_stubs_must_be_less_than_nodes(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(number_of_nodes=5, stubs=5)

    def test_cutoff_below_stubs_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(number_of_nodes=10, stubs=3, hard_cutoff=2)

    def test_pa_and_hapa_subclasses(self):
        assert PAConfig(number_of_nodes=10, stubs=1).number_of_nodes == 10
        hapa = HAPAConfig(number_of_nodes=10, stubs=1, max_hops_per_stub=5)
        assert hapa.max_hops_per_stub == 5

    def test_hapa_invalid_hop_budget(self):
        with pytest.raises(ConfigurationError):
            HAPAConfig(number_of_nodes=10, stubs=1, max_hops_per_stub=0)


class TestCMConfig:
    def test_valid(self):
        config = CMConfig(number_of_nodes=100, exponent=2.5, min_degree=2, hard_cutoff=20)
        assert config.effective_cutoff() == 20
        assert config.has_cutoff

    def test_default_cutoff_is_n(self):
        config = CMConfig(number_of_nodes=100)
        assert config.effective_cutoff() == 100

    def test_exponent_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            CMConfig(number_of_nodes=100, exponent=1.0)

    def test_cutoff_below_min_degree(self):
        with pytest.raises(ConfigurationError):
            CMConfig(number_of_nodes=100, min_degree=5, hard_cutoff=3)

    def test_cutoff_above_n(self):
        with pytest.raises(ConfigurationError):
            CMConfig(number_of_nodes=10, hard_cutoff=20)


class TestGRNConfig:
    def test_requires_radius_or_mean_degree(self):
        with pytest.raises(ConfigurationError):
            GRNConfig(number_of_nodes=100)

    def test_effective_radius_from_explicit_radius(self):
        config = GRNConfig(number_of_nodes=100, radius=0.1)
        assert config.effective_radius() == 0.1

    def test_effective_radius_from_mean_degree_2d(self):
        config = GRNConfig(number_of_nodes=1000, target_mean_degree=10.0)
        radius = config.effective_radius()
        # <k> = (N-1) * pi * R^2  =>  R = sqrt(<k> / ((N-1) pi))
        expected = math.sqrt(10.0 / (999 * math.pi))
        assert radius == pytest.approx(expected)

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            GRNConfig(number_of_nodes=10, radius=0.1, dimensions=4)

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            GRNConfig(number_of_nodes=10, radius=0.0)

    def test_one_dimensional_radius(self):
        config = GRNConfig(number_of_nodes=101, target_mean_degree=4.0, dimensions=1)
        assert config.effective_radius() == pytest.approx(4.0 / (100 * 2.0))


class TestMeshConfig:
    def test_node_count(self):
        assert MeshConfig(rows=3, columns=4).number_of_nodes == 12

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            MeshConfig(rows=1, columns=5)


class TestDAPAConfig:
    def test_valid_with_default_substrate(self):
        config = DAPAConfig(overlay_size=100, stubs=2, hard_cutoff=10, local_ttl=3)
        substrate = config.default_substrate()
        assert substrate.number_of_nodes == 200
        assert substrate.target_mean_degree == 10.0

    def test_effective_cutoff(self):
        assert DAPAConfig(overlay_size=50, hard_cutoff=8).effective_cutoff() == 8
        assert DAPAConfig(overlay_size=50).effective_cutoff() == 50

    def test_local_ttl_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DAPAConfig(overlay_size=50, local_ttl=0)

    def test_initial_peers_bounds(self):
        with pytest.raises(ConfigurationError):
            DAPAConfig(overlay_size=50, initial_peers=1)
        with pytest.raises(ConfigurationError):
            DAPAConfig(overlay_size=5, initial_peers=10)

    def test_substrate_must_be_large_enough(self):
        small_substrate = GRNConfig(number_of_nodes=10, radius=0.2)
        with pytest.raises(ConfigurationError):
            DAPAConfig(overlay_size=50, substrate=small_substrate)

    def test_substrate_type_validated(self):
        with pytest.raises(ConfigurationError):
            DAPAConfig(overlay_size=50, substrate="not-a-config")

    def test_cutoff_below_stubs(self):
        with pytest.raises(ConfigurationError):
            DAPAConfig(overlay_size=50, stubs=3, hard_cutoff=2)


class TestSearchConfig:
    def test_defaults(self):
        config = SearchConfig()
        assert config.ttl == 5
        assert config.queries == 100

    def test_negative_ttl(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(ttl=-1)

    def test_zero_queries(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(queries=0)
