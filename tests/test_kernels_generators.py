"""Cross-tier equivalence for the generator kernels (repro.kernels.generators).

The generator kernel tier's contract mirrors the search kernels': for every
construction family (PA in both strategies, nonlinear PA, CM stub matching,
HAPA, DAPA) and every stochastic substrate (GRN, ER), a ``jit`` build must
produce a graph *byte-identical* to the Python growth loop — same node
insertion order, same edges in the same per-node neighbor order (pinned
through the frozen CSR arrays), same metadata counters — and leave the
shared RNG stream at exactly the position the reference would have
reached, with the reference's draw-call counts pinned so neither tier can
ever silently shift the seeds of anything running afterwards.

Also covered here: the PA saturated-stub bugfix sweep (doomed picks detect
in O(m) instead of burning ``_MAX_REJECTIONS_PER_STUB`` draws, fallback
rejections are accounted, ``strict`` makes min-degree violations loud) and
the cross-strategy statistical guard (``attempt`` vs ``roulette``).
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, GenerationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators import pa as pa_module
from repro.generators.cm import ConfigurationModelGenerator, generate_cm
from repro.generators.dapa import generate_dapa
from repro.generators.hapa import HAPAGenerator, generate_hapa
from repro.generators.nonlinear_pa import (
    NonlinearPreferentialAttachmentGenerator,
    generate_nonlinear_pa,
)
from repro.generators.pa import PreferentialAttachmentGenerator, generate_pa
from repro.kernels.dispatch import use_kernels
from repro.substrate.grn import GeometricRandomNetwork, generate_grn
from repro.substrate.mesh import MeshNetwork
from repro.substrate.random_graph import generate_erdos_renyi


class _CountingSource(RandomSource):
    """RandomSource subclass counting draw-method calls (python tier only:
    the kernel dispatch refuses subclasses by design)."""

    def __init__(self, seed=None):
        super().__init__(seed)
        self.calls = Counter()

    def random(self):
        self.calls["random"] += 1
        return super().random()

    def randint(self, low, high):
        self.calls["randint"] += 1
        return super().randint(low, high)

    def sample(self, items, count):
        self.calls["sample"] += 1
        return super().sample(items, count)

    def shuffle(self, items):
        self.calls["shuffle"] += 1
        return super().shuffle(items)

    def choice(self, items):
        self.calls["choice"] += 1
        return super().choice(items)

    def weighted_index(self, weights):
        self.calls["weighted_index"] += 1
        return super().weighted_index(weights)

    def spawn(self, label=""):
        self.calls["spawn"] += 1
        return super().spawn(label)


#: One representative build per family (the same shapes the backend
#: equivalence suite uses), callable with an explicit RandomSource.
BUILDERS = {
    "pa": lambda rng: generate_pa(300, stubs=2, hard_cutoff=10, rng=rng),
    "pa-attempt": lambda rng: generate_pa(
        300, stubs=2, hard_cutoff=10, strategy="attempt", rng=rng
    ),
    "nlpa": lambda rng: generate_nonlinear_pa(
        300, stubs=2, exponent_alpha=0.8, hard_cutoff=10, rng=rng
    ),
    "cm": lambda rng: generate_cm(
        300, exponent=2.5, min_degree=2, hard_cutoff=20, rng=rng
    ),
    "hapa": lambda rng: generate_hapa(200, stubs=1, hard_cutoff=8, rng=rng),
    "dapa": lambda rng: generate_dapa(
        150, stubs=2, hard_cutoff=10, local_ttl=4, rng=rng
    ),
}

#: Draw-call counts of each reference build with seed 2024, measured on the
#: python tier.  The jit tier must leave a plain stream at the identical
#: position (asserted via the next float below); if an intentional
#: algorithm change alters these, update them in the same commit.
PINNED_DRAWS = {
    "pa": {"randint": 745},
    "pa-attempt": {"randint": 113886, "random": 113886},
    "nlpa": {"weighted_index": 594},
    "cm": {"shuffle": 1},
    "hapa": {"randint": 28497, "random": 18906},
    "dapa": {"spawn": 1, "sample": 1, "randint": 5297, "random": 4905},
}

SEED = 2024


def _assert_byte_identical(graph_python: Graph, graph_jit: Graph) -> None:
    """Same nodes in the same order, same edges in the same neighbor order."""
    assert graph_python.nodes() == graph_jit.nodes()
    frozen_python = graph_python.freeze()
    frozen_jit = graph_jit.freeze()
    assert np.array_equal(frozen_python._indptr, frozen_jit._indptr)
    assert np.array_equal(frozen_python._indices, frozen_jit._indices)
    if frozen_python._ids is None:
        assert frozen_jit._ids is None
    else:
        assert np.array_equal(frozen_python._ids, frozen_jit._ids)


class TestCrossTierByteIdentity:
    """python vs jit builds: byte-identical graphs, identical stream use."""

    @pytest.mark.parametrize("model", sorted(BUILDERS))
    def test_graphs_and_stream_position(self, model):
        rng_python = RandomSource(seed=SEED)
        rng_jit = RandomSource(seed=SEED)
        with use_kernels("python"):
            graph_python = BUILDERS[model](rng_python)
        with use_kernels("jit"):
            graph_jit = BUILDERS[model](rng_jit)
        _assert_byte_identical(graph_python, graph_jit)
        assert rng_python.random() == rng_jit.random(), (
            f"{model}: jit generation left the stream at a different position"
        )

    @pytest.mark.parametrize("model", sorted(BUILDERS))
    def test_pinned_draw_counts(self, model):
        rng = _CountingSource(SEED)
        with use_kernels("python"):
            BUILDERS[model](rng)
        assert dict(rng.calls) == PINNED_DRAWS[model]

    @pytest.mark.parametrize("model", sorted(BUILDERS))
    def test_instrumented_sources_keep_the_reference_path(self, model):
        # A RandomSource *subclass* must never reach the kernels (they
        # consume the MT stream underneath any overridden methods), so the
        # pinned counts hold on the jit tier too.
        rng = _CountingSource(SEED)
        with use_kernels("jit"):
            graph = BUILDERS[model](rng)
        assert dict(rng.calls) == PINNED_DRAWS[model]
        reference = BUILDERS[model](RandomSource(seed=SEED))
        _assert_byte_identical(reference, graph)

    @pytest.mark.parametrize("model", sorted(BUILDERS))
    def test_metadata_identical(self, model):
        results = {}
        for tier in ("python", "jit"):
            with use_kernels(tier):
                if model == "pa":
                    result = PreferentialAttachmentGenerator(
                        300, stubs=2, hard_cutoff=10
                    ).generate(RandomSource(seed=SEED))
                elif model == "pa-attempt":
                    result = PreferentialAttachmentGenerator(
                        300, stubs=2, hard_cutoff=10, strategy="attempt"
                    ).generate(RandomSource(seed=SEED))
                elif model == "nlpa":
                    result = NonlinearPreferentialAttachmentGenerator(
                        300, stubs=2, exponent_alpha=0.8, hard_cutoff=10
                    ).generate(RandomSource(seed=SEED))
                elif model == "cm":
                    result = ConfigurationModelGenerator(
                        300, exponent=2.5, min_degree=2, hard_cutoff=20
                    ).generate(RandomSource(seed=SEED))
                elif model == "hapa":
                    result = HAPAGenerator(200, stubs=1, hard_cutoff=8).generate(
                        RandomSource(seed=SEED)
                    )
                else:
                    from repro.generators.dapa import DAPAGenerator

                    result = DAPAGenerator(
                        overlay_size=150, stubs=2, hard_cutoff=10, local_ttl=4
                    ).generate(RandomSource(seed=SEED))
            results[tier] = result
        meta_python = dict(results["python"].metadata)
        meta_jit = dict(results["jit"].metadata)
        # The DAPA substrate graph object differs by identity only.
        if model == "dapa":
            sub_python = meta_python.pop("substrate_graph")
            sub_jit = meta_jit.pop("substrate_graph")
            assert sub_python == sub_jit
        assert meta_python == meta_jit


class TestTightCutoffEdgeCases:
    """Saturation-heavy configurations must stay cross-tier identical."""

    CASES = [
        # (n, m, kc): kc = m + 1 keeps most of the network saturated.
        (150, 1, 2),
        (80, 2, 3),
        (40, 3, 4),
        (300, 2, None),
    ]

    @pytest.mark.parametrize("n,m,kc", CASES)
    def test_pa_saturated(self, n, m, kc):
        rng_python, rng_jit = RandomSource(seed=31), RandomSource(seed=31)
        with use_kernels("python"):
            graph_python = generate_pa(n, stubs=m, hard_cutoff=kc, rng=rng_python)
        with use_kernels("jit"):
            graph_jit = generate_pa(n, stubs=m, hard_cutoff=kc, rng=rng_jit)
        _assert_byte_identical(graph_python, graph_jit)
        assert rng_python.random() == rng_jit.random()

    def test_pa_complete_graph_request(self):
        # n == m + 1: the seed clique is the whole graph, no growth phase.
        for tier in ("python", "jit"):
            with use_kernels(tier):
                graph = generate_pa(4, stubs=3, rng=RandomSource(seed=1))
            assert graph.number_of_edges == 6
            assert graph.min_degree() == 3

    def test_hapa_small_hop_budget(self):
        rng_python, rng_jit = RandomSource(seed=5), RandomSource(seed=5)
        with use_kernels("python"):
            graph_python = generate_hapa(
                120, stubs=2, hard_cutoff=3, max_hops_per_stub=5, rng=rng_python
            )
        with use_kernels("jit"):
            graph_jit = generate_hapa(
                120, stubs=2, hard_cutoff=3, max_hops_per_stub=5, rng=rng_jit
            )
        _assert_byte_identical(graph_python, graph_jit)
        assert rng_python.random() == rng_jit.random()

    def test_cm_minimal_sequence(self):
        sequence = [1, 1, 2, 2, 1, 1]
        for tier in ("python", "jit"):
            with use_kernels(tier):
                graphs = generate_cm(
                    6, degree_sequence=sequence, rng=RandomSource(seed=3)
                )
            assert graphs.number_of_nodes == 6

    def test_dapa_target_equals_initial_peers(self):
        for tier in ("python", "jit"):
            with use_kernels(tier):
                graph = generate_dapa(
                    20, stubs=1, initial_peers=20, local_ttl=2,
                    rng=RandomSource(seed=2),
                )
            assert graph.number_of_nodes == 20


class TestPASaturationBugfixes:
    """The PA roulette sweep: doomed picks, accounting, strict mode."""

    def test_doomed_pick_consumes_no_draws(self):
        # All three existing nodes are saturated: the old code burned
        # _MAX_REJECTIONS_PER_STUB draws per stub discovering that.
        graph = Graph.complete(3)
        graph.add_node(3)
        stub_list = [0, 1, 0, 2, 1, 2]
        entries = [2, 2, 2, 0]
        rng = RandomSource(seed=9)
        before = rng.getstate()
        target, rejections = PreferentialAttachmentGenerator._pick_roulette(
            graph, stub_list, 3, 2, rng, entries, dead_entries=6, chosen=[],
        )
        assert target is None
        assert rejections == 0
        assert rng.getstate() == before, "doomed pick consumed draws"

    def test_doomed_build_is_fast_and_degenerates_loudly_in_strict_mode(self):
        # kc == m + 1 with m == 2: after the seed clique every node pair is
        # quickly saturated; the build must terminate without rejection
        # storms and strict mode must refuse the degenerate result.
        generator = PreferentialAttachmentGenerator(
            30, stubs=2, hard_cutoff=3, strict=False
        )
        result = generator.generate(RandomSource(seed=12))
        assert result.metadata["unfilled_stubs"] > 0
        assert result.metadata["min_degree_violations"] > 0
        with pytest.raises(GenerationError, match="unfilled"):
            PreferentialAttachmentGenerator(
                30, stubs=2, hard_cutoff=3, strict=True
            ).generate(RandomSource(seed=12))

    def test_strict_accepts_clean_builds(self):
        graph = generate_pa(200, stubs=2, hard_cutoff=10, seed=3, strict=True)
        assert graph.min_degree() >= 2

    def test_min_degree_violations_in_metadata(self):
        result = PreferentialAttachmentGenerator(200, stubs=2, hard_cutoff=10).generate(
            RandomSource(seed=3)
        )
        assert result.metadata["min_degree_violations"] == 0

    def test_fallback_scan_counts_zero_rejections_when_loop_disabled(self, monkeypatch):
        # With the rejection loop disabled every stub goes through the
        # degree-weighted fallback scan; the build must still satisfy the
        # model exactly and report the (zero) rejections it burned.
        monkeypatch.setattr(pa_module, "_MAX_REJECTIONS_PER_STUB", 0)
        generator = PreferentialAttachmentGenerator(60, stubs=2, hard_cutoff=10)
        graph, metadata = generator._build_roulette(RandomSource(seed=4))
        assert metadata["rejected_attempts"] == 0
        assert metadata["unfilled_stubs"] == 0
        assert graph.min_degree() >= 2
        assert graph.max_degree() <= 10


class TestSeedCliqueValidation:
    """Seed-clique edge cases fail eagerly instead of degenerating."""

    def test_pa_cutoff_equal_to_stubs_rejected_for_growing_network(self):
        with pytest.raises(ConfigurationError, match="exceed stubs"):
            PreferentialAttachmentGenerator(10, stubs=2, hard_cutoff=2)

    def test_pa_cutoff_equal_to_stubs_allowed_for_complete_graph(self):
        graph = PreferentialAttachmentGenerator(
            3, stubs=2, hard_cutoff=2
        ).generate_graph(RandomSource(seed=1))
        assert graph.number_of_edges == 3

    def test_hapa_cutoff_equal_to_stubs_allowed_for_complete_graph(self):
        graph = HAPAGenerator(3, stubs=2, hard_cutoff=2).generate_graph(
            RandomSource(seed=1)
        )
        assert graph.number_of_edges == 3

    def test_stubs_not_below_network_size(self):
        with pytest.raises(ConfigurationError):
            PreferentialAttachmentGenerator(3, stubs=3)
        with pytest.raises(ConfigurationError):
            HAPAGenerator(3, stubs=3)

    def test_attempt_strategy_empty_seed_raises(self, monkeypatch):
        # total_degree == 0 is unreachable through validated configs; force
        # it by faking an edgeless seed clique and pin the loud failure.
        generator = PreferentialAttachmentGenerator(6, stubs=1, strategy="attempt")
        monkeypatch.setattr(
            pa_module.Graph, "complete", classmethod(lambda cls, n: cls(n))
        )
        with pytest.raises(GenerationError, match="edgeless"):
            generator.generate(RandomSource(seed=1))


#: One representative build per stochastic substrate family; mesh is
#: deterministic and covered separately.  The torus case pins the
#: wrapped-neighbor-cell dedupe (cells_per_side == 1 maps every ±1 offset
#: onto the home cell).
SUBSTRATE_BUILDERS = {
    "grn": lambda rng: generate_grn(400, radius=0.1, rng=rng),
    "grn-torus": lambda rng: generate_grn(60, radius=0.6, torus=True, rng=rng),
    "er": lambda rng: generate_erdos_renyi(300, edge_probability=0.05, rng=rng),
}

SUBSTRATE_PINNED_DRAWS = {
    "grn": {"random": 800},
    "grn-torus": {"random": 120},
    "er": {"random": 2202},
}


class TestSubstrateCrossTier:
    """Substrate builders: array/kernel path vs the legacy dict path."""

    @pytest.mark.parametrize("name", sorted(SUBSTRATE_BUILDERS))
    def test_graphs_and_stream_position(self, name):
        rng_python = RandomSource(seed=SEED)
        rng_jit = RandomSource(seed=SEED)
        with use_kernels("python"):
            graph_python = SUBSTRATE_BUILDERS[name](rng_python)
        with use_kernels("jit"):
            graph_jit = SUBSTRATE_BUILDERS[name](rng_jit)
        _assert_byte_identical(graph_python, graph_jit)
        assert rng_python.random() == rng_jit.random(), (
            f"{name}: jit substrate build left the stream at a different position"
        )

    @pytest.mark.parametrize("name", sorted(SUBSTRATE_BUILDERS))
    def test_pinned_draw_counts(self, name):
        rng = _CountingSource(SEED)
        with use_kernels("python"):
            SUBSTRATE_BUILDERS[name](rng)
        assert dict(rng.calls) == SUBSTRATE_PINNED_DRAWS[name]

    @pytest.mark.parametrize("name", sorted(SUBSTRATE_BUILDERS))
    def test_instrumented_sources_keep_the_reference_path(self, name):
        rng = _CountingSource(SEED)
        with use_kernels("jit"):
            graph = SUBSTRATE_BUILDERS[name](rng)
        assert dict(rng.calls) == SUBSTRATE_PINNED_DRAWS[name]
        reference = SUBSTRATE_BUILDERS[name](RandomSource(seed=SEED))
        _assert_byte_identical(reference, graph)

    def test_grn_array_path_freeze_equals_dict_path(self):
        # The substrate contract the simulation layer relies on: whichever
        # tier built the substrate, freeze() hands DAPA the same CSR arrays
        # and the same node positions.
        builder = GeometricRandomNetwork(200, radius=0.15)
        with use_kernels("python"):
            dict_graph = builder.build(RandomSource(seed=7))
        dict_positions = dict(builder.positions)
        with use_kernels("jit"):
            array_graph = builder.build(RandomSource(seed=7))
        assert builder.positions == dict_positions
        _assert_byte_identical(dict_graph, array_graph)

    def test_mesh_vectorized_build_matches_reference(self):
        cases = [
            (5, 7, False), (5, 7, True), (2, 2, True), (2, 6, True),
            (4, 2, True), (3, 3, True),
        ]
        for rows, columns, torus in cases:
            mesh = MeshNetwork(rows, columns, torus=torus)
            reference = mesh._build_reference()
            vectorized = mesh.build(RandomSource(seed=1))
            _assert_byte_identical(reference, vectorized)


class TestNlpaBugfixes:
    """The nlpa eligibility-bias fix and the strict/metadata hardening."""

    def test_isolated_nodes_reachable_in_uniform_limit(self):
        # alpha == 0 is uniform attachment: k**0 == 1 for everyone,
        # *including* degree-0 nodes.  The old eligibility filter silently
        # excluded them, biasing the uniform limit; with the fix, a node
        # that somehow ends up isolated can still be attached to.
        generator = NonlinearPreferentialAttachmentGenerator(
            120, stubs=1, exponent_alpha=0.0
        )
        graph, metadata = generator._build_reference(RandomSource(seed=13))
        assert metadata["unfilled_stubs"] == 0
        assert graph.min_degree() >= 1

    def test_uniform_limit_weights_are_uniform(self):
        # Direct distribution check of the fix: under alpha == 0 every
        # non-neighbor below the cutoff must be drawable, so across many
        # seeds the early nodes' attachment frequencies stay comparable
        # (the old filter would zero out freshly-degenerate nodes).
        counts = Counter()
        for seed in range(40):
            graph = generate_nonlinear_pa(
                30, stubs=1, exponent_alpha=0.0, seed=seed
            )
            for node in range(2):
                counts[node] += graph.degree(node)
        assert counts[0] > 0 and counts[1] > 0
        ratio = counts[0] / counts[1]
        assert 0.4 < ratio < 2.5, f"uniform limit biased: {dict(counts)}"

    def test_strict_raises_on_unfilled_stubs(self):
        # A tight cutoff starves later stubs; strict mode must refuse the
        # degenerate topology instead of returning it silently.
        strict = NonlinearPreferentialAttachmentGenerator(
            60, stubs=2, exponent_alpha=1.0, hard_cutoff=3, strict=True
        )
        lenient = NonlinearPreferentialAttachmentGenerator(
            60, stubs=2, exponent_alpha=1.0, hard_cutoff=3, strict=False
        )
        result = lenient.generate(RandomSource(seed=21))
        # Later arrivals can heal a node whose own stub went unfilled, so
        # min_degree_violations may come out zero; the unfilled count alone
        # is what strict mode keys on.
        assert result.metadata["unfilled_stubs"] > 0
        with pytest.raises(GenerationError, match="unfilled"):
            strict.generate(RandomSource(seed=21))

    def test_strict_accepts_clean_builds(self):
        graph = generate_nonlinear_pa(
            150, stubs=2, exponent_alpha=0.8, hard_cutoff=20, seed=5, strict=True
        )
        assert graph.min_degree() >= 2

    def test_cutoff_equal_to_stubs_rejected_for_growing_network(self):
        with pytest.raises(ConfigurationError, match="exceed stubs"):
            NonlinearPreferentialAttachmentGenerator(10, stubs=2, hard_cutoff=2)

    def test_unfilled_stubs_always_in_metadata(self):
        result = NonlinearPreferentialAttachmentGenerator(
            80, stubs=2, exponent_alpha=1.2, hard_cutoff=30
        ).generate(RandomSource(seed=8))
        assert result.metadata["unfilled_stubs"] == 0
        assert result.metadata["min_degree_violations"] == 0


class TestCrossStrategyStatisticalGuard:
    """'attempt' and 'roulette' draw from the same attachment distribution."""

    def test_mean_degree_and_distribution_agree(self):
        n, m, kc = 500, 2, 20
        pooled = {"roulette": Counter(), "attempt": Counter()}
        means = {"roulette": [], "attempt": []}
        for strategy in pooled:
            for seed in range(5):
                graph = generate_pa(
                    n, stubs=m, hard_cutoff=kc, seed=seed, strategy=strategy
                )
                assert graph.max_degree() <= kc
                pooled[strategy].update(graph.degree_sequence())
                means[strategy].append(graph.mean_degree())
        mean_roulette = sum(means["roulette"]) / len(means["roulette"])
        mean_attempt = sum(means["attempt"]) / len(means["attempt"])
        # Both strategies fill (almost) all m stubs per node: <k> ~ 2m.
        assert abs(mean_roulette - mean_attempt) < 0.1 * 2 * m
        # Total-variation distance between the pooled degree distributions.
        total = n * 5
        support = set(pooled["roulette"]) | set(pooled["attempt"])
        tv_distance = 0.5 * sum(
            abs(
                pooled["roulette"][k] / total - pooled["attempt"][k] / total
            )
            for k in support
        )
        assert tv_distance < 0.1, f"strategies diverged: TV={tv_distance:.3f}"

    def test_generator_tiers_agree_statistically_and_exactly(self):
        # Stronger than statistics: the tiers are byte-identical, so the
        # distribution guard holds trivially — pin the exact agreement on
        # the pooled distribution for a multi-seed sweep.
        for seed in range(3):
            with use_kernels("python"):
                graph_python = generate_pa(400, stubs=2, hard_cutoff=20, seed=seed)
            with use_kernels("jit"):
                graph_jit = generate_pa(400, stubs=2, hard_cutoff=20, seed=seed)
            assert Counter(graph_python.degree_sequence()) == Counter(
                graph_jit.degree_sequence()
            )


class TestBulkConstructors:
    """Graph.from_edge_array / CSRGraph.from_edge_arrays ingestion paths."""

    def test_from_edge_array_matches_incremental(self):
        edges = [(0, 1), (1, 2), (0, 2), (3, 1), (3, 0)]
        incremental = Graph(4)
        for u, v in edges:
            incremental.add_edge(u, v)
        bulk = Graph.from_edge_array(
            4,
            np.array([edge[0] for edge in edges]),
            np.array([edge[1] for edge in edges]),
        )
        assert bulk == incremental
        for node in range(4):
            assert bulk.iter_neighbors(node) == incremental.iter_neighbors(node)

    def test_from_edge_array_rejects_self_loops_and_duplicates(self):
        with pytest.raises(Exception, match="self-loop"):
            Graph.from_edge_array(3, np.array([0, 1]), np.array([0, 2]))
        with pytest.raises(Exception, match="duplicate"):
            Graph.from_edge_array(3, np.array([0, 1, 0]), np.array([1, 2, 1]))

    def test_cached_freeze_is_byte_identical_and_invalidated(self):
        bulk = Graph.from_edge_array(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        frozen_cached = bulk.freeze()
        rebuilt = bulk.copy().freeze()  # copy() drops the cache
        assert np.array_equal(frozen_cached._indptr, rebuilt._indptr)
        assert np.array_equal(frozen_cached._indices, rebuilt._indices)
        bulk.add_edge(0, 3)
        frozen_after = bulk.freeze()
        assert frozen_after.has_edge(0, 3)
        assert not frozen_cached.has_edge(0, 3)

    def test_csr_from_edge_arrays(self):
        from repro.core.csr import CSRGraph

        edges = [(0, 1), (1, 2), (0, 2), (3, 1)]
        reference = Graph(4)
        for u, v in edges:
            reference.add_edge(u, v)
        direct = CSRGraph.from_edge_arrays(
            4,
            np.array([edge[0] for edge in edges]),
            np.array([edge[1] for edge in edges]),
        )
        frozen = reference.freeze()
        assert np.array_equal(direct._indptr, frozen._indptr)
        assert np.array_equal(direct._indices, frozen._indices)
