"""Unit tests for peers and bounded neighbor tables."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.core.rng import RandomSource
from repro.simulation.peer import NeighborTable, Peer


class TestNeighborTable:
    def test_capacity_enforced(self):
        table = NeighborTable(capacity=2)
        assert table.add(1)
        assert table.add(2)
        assert not table.add(3)
        assert table.is_full
        assert len(table) == 2

    def test_unbounded_table(self):
        table = NeighborTable()
        for peer in range(100):
            assert table.add(peer)
        assert not table.is_full
        assert table.free_slots is None

    def test_duplicate_add_returns_false(self):
        table = NeighborTable(capacity=5)
        assert table.add(1)
        assert not table.add(1)
        assert len(table) == 1

    def test_remove(self):
        table = NeighborTable(capacity=2)
        table.add(1)
        assert table.remove(1)
        assert not table.remove(1)
        assert 1 not in table

    def test_free_slots(self):
        table = NeighborTable(capacity=3)
        table.add(1)
        assert table.free_slots == 2

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            NeighborTable(capacity=0)

    def test_iteration_sorted(self):
        table = NeighborTable()
        for peer in (5, 1, 3):
            table.add(peer)
        assert list(table) == [1, 3, 5]
        assert table.as_list() == [1, 3, 5]

    def test_random_neighbor(self):
        table = NeighborTable()
        rng = RandomSource(seed=1)
        assert table.random_neighbor(rng) is None
        table.add(9)
        assert table.random_neighbor(rng) == 9


class TestPeer:
    def test_degree_and_cutoff(self):
        peer = Peer(peer_id=1, neighbor_table=NeighborTable(capacity=4))
        peer.neighbor_table.add(2)
        assert peer.degree == 1
        assert peer.hard_cutoff == 4
        assert peer.neighbors() == [2]

    def test_content_sharing(self):
        peer = Peer(peer_id=1)
        peer.share("song.mp3")
        assert peer.has_item("song.mp3")
        peer.unshare("song.mp3")
        assert not peer.has_item("song.mp3")
        peer.unshare("never-shared")  # no error

    def test_mark_seen_duplicate_suppression(self):
        peer = Peer(peer_id=1)
        assert peer.mark_seen(100)
        assert not peer.mark_seen(100)
        assert peer.mark_seen(101)

    def test_counters_and_reset(self):
        peer = Peer(peer_id=1)
        peer.messages_received = 5
        peer.messages_forwarded = 3
        peer.queries_answered = 1
        peer.reset_counters()
        assert peer.messages_received == 0
        assert peer.messages_forwarded == 0
        assert peer.queries_answered == 0

    def test_snapshot(self):
        peer = Peer(peer_id=7, neighbor_table=NeighborTable(capacity=3))
        peer.share("a")
        snapshot = peer.snapshot()
        assert snapshot["peer_id"] == 7
        assert snapshot["hard_cutoff"] == 3
        assert snapshot["shared_items"] == 1
        assert snapshot["online"] is True
