"""Telemetry subsystem: overhead guard, worker merge, schema, bench gate."""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.cli import main
from repro.core.graph import Graph
from repro.engine.executor import ParallelExecutor, SerialExecutor, use_executor
from repro.engine.progress import ProgressReporter
from repro.engine.store import ResultStore
from repro.engine.tasks import Task
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.telemetry.collector import (
    NULL_TELEMETRY,
    TRACE_SCHEMA_VERSION,
    TelemetryCollector,
    active_telemetry,
    use_telemetry,
)


def _ladder_graph(rungs: int = 30) -> Graph:
    edges = []
    for index in range(rungs - 1):
        edges.append((2 * index, 2 * index + 2))
        edges.append((2 * index + 1, 2 * index + 3))
    edges.extend((2 * index, 2 * index + 1) for index in range(rungs))
    return Graph.from_edges(2 * rungs, edges)


class TestDisabledByDefault:
    def test_ambient_default_is_null(self):
        assert active_telemetry() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled

    def test_null_span_is_shared_and_reusable(self):
        span_a = NULL_TELEMETRY.span("generate")
        span_b = NULL_TELEMETRY.span("search")
        assert span_a is span_b
        with span_a:
            with span_b:
                pass

    def test_nf_hot_loop_allocates_nothing_in_telemetry(self):
        """The overhead guard: with telemetry off (the default), running the
        NF hot loop must not allocate a single object inside the telemetry
        module."""
        import repro.telemetry.collector as collector_module

        graph = _ladder_graph()
        search = NormalizedFloodingSearch(k_min=2)
        # Warm up: thread-local ambient stack, lazy imports, caches.
        search.run(graph, source=0, ttl=6, rng=1)

        tracemalloc.start()
        try:
            search.run(graph, source=0, ttl=6, rng=2)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        telemetry_file = collector_module.__file__
        allocations = [
            stat
            for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename == telemetry_file
        ]
        assert allocations == []


class TestCollector:
    def test_span_counter_histogram_recording(self):
        collector = TelemetryCollector()
        with collector.span("generate"):
            pass
        collector.count("draws", 3)
        collector.count("draws", 2)
        collector.observe("frontier", 4)
        collector.observe("frontier", 10)
        collector.observe("frontier", 1)
        assert collector.spans["generate"]["count"] == 1
        assert collector.counters["draws"] == 5
        histogram = collector.histograms["frontier"]
        assert histogram["count"] == 3
        assert histogram["total"] == 15
        assert histogram["min"] == 1
        assert histogram["max"] == 10
        # Since schema 2 every observation also lands in a bucket.
        assert sum(histogram["buckets"]) == 3

    def test_export_round_trip(self):
        collector = TelemetryCollector()
        with collector.span("search"):
            pass
        collector.count("queries", 7)
        collector.observe("frontier", 3)
        collector.merge_task("t0", 0.5, collector.export())
        exported = collector.export()
        assert exported["schema"] == TRACE_SCHEMA_VERSION
        rebuilt = TelemetryCollector.from_dict(exported)
        assert rebuilt.export() == exported

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            TelemetryCollector.from_dict({"schema": 999})

    def test_trace_json_round_trip_through_text(self):
        collector = TelemetryCollector()
        collector.count("a", 1)
        collector.observe("h", 2.5)
        with collector.span("s"):
            pass
        text = json.dumps(collector.export(), sort_keys=True)
        rebuilt = TelemetryCollector.from_dict(json.loads(text))
        assert json.dumps(rebuilt.export(), sort_keys=True) == text


def _traced_run(executor, tasks):
    collector = TelemetryCollector()
    with use_telemetry(collector), use_executor(executor):
        results = executor.run(tasks)
    return results, collector


def _telemetry_task(seed: int) -> Task:
    return Task(key=f"real[{seed}]", fn=_generate_and_search, args=(seed,))


def _generate_and_search(seed: int):
    """A realization-shaped workload (module-level: must pickle to workers)."""
    from repro.generators.pa import PreferentialAttachmentGenerator
    from repro.search.metrics import search_curve

    graph = PreferentialAttachmentGenerator(
        80, stubs=2, hard_cutoff=8, seed=seed
    ).generate_graph()
    curve = search_curve(
        graph, NormalizedFloodingSearch(k_min=2), [2, 4], queries=5, rng=seed
    )
    return curve.mean_hits


class TestWorkerMerge:
    def test_parallel_trace_matches_serial(self):
        tasks = [_telemetry_task(seed) for seed in (11, 12, 13, 14)]
        serial_results, serial_collector = _traced_run(SerialExecutor(), tasks)
        with ParallelExecutor(jobs=2) as parallel:
            parallel_results, parallel_collector = _traced_run(
                parallel, [_telemetry_task(seed) for seed in (11, 12, 13, 14)]
            )

        # Results byte-identical to serial execution.
        assert parallel_results == serial_results

        serial_export = serial_collector.export()
        parallel_export = parallel_collector.export()

        # Counters and histograms merge to exactly the serial values.
        # ``kernels.fallback.*`` is excluded by design: the fallback warning
        # fires once per *process*, so each fresh pool worker may count it
        # while the long-lived test process consumed its warning long ago
        # (same per-process exception the kernel-compile span documents).
        def _workload_counters(export):
            return {
                name: value
                for name, value in export["counters"].items()
                if not name.startswith("kernels.fallback.")
            }

        assert _workload_counters(parallel_export) == _workload_counters(
            serial_export
        )
        assert parallel_export["histograms"] == serial_export["histograms"]
        # Spans agree on structure and counts (wall time differs).
        assert {
            name: entry["count"]
            for name, entry in parallel_export["spans"].items()
        } == {
            name: entry["count"]
            for name, entry in serial_export["spans"].items()
        }
        # Per-task records arrive in submission order on both paths.
        assert [task["key"] for task in parallel_export["tasks"]] == [
            task["key"] for task in serial_export["tasks"]
        ]

    def test_task_records_account_for_wall_time(self):
        tasks = [_telemetry_task(seed) for seed in (21, 22)]
        _, collector = _traced_run(SerialExecutor(), tasks)
        for task in collector.export()["tasks"]:
            span_seconds = sum(
                entry["seconds"] for entry in task["spans"].values()
            )
            # Named spans must account for the bulk of each realization; the
            # acceptance bar is 95% at experiment scale — on these tiny test
            # tasks fixed per-call overhead is proportionally larger, so the
            # guard is set below it to stay deterministic.
            assert span_seconds >= 0.5 * task["seconds"]
            assert span_seconds <= task["seconds"] * 1.05


class TestProgressThroughput:
    def test_task_line_includes_elapsed_and_rate(self, capsys):
        import sys

        reporter = ProgressReporter(stream=sys.stderr)
        reporter.experiment_started("fig9")
        reporter.task_finished("t0", 0.5)
        reporter.experiment_finished("fig9")
        err = capsys.readouterr().err
        assert "elapsed" in err
        assert "tasks/s" in err


class TestSelfCheckMuted:
    def test_probe_records_span_but_no_workload_metrics(self, monkeypatch):
        # The parity self-check runs reference queries internally; those
        # must charge the kernel-compile span only — never the workload
        # search/generation counters or histograms (a 2-worker parallel
        # run would otherwise double-count them vs a serial one).
        from repro.kernels import dispatch

        monkeypatch.setattr(dispatch, "_PROBE", {})
        collector = TelemetryCollector()
        with use_telemetry(collector):
            dispatch.kernel_self_check()
        assert collector.spans.get("kernel-compile", {}).get("count") == 1
        assert collector.counters == {}
        assert collector.histograms == {}


class TestStoreTelemetry:
    def _result(self):
        return ExperimentResult(
            "fake", "t", series=[Series(label="a", x=[1], y=[2.0])]
        )

    def test_bytes_and_last_run_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        scale = ExperimentScale.smoke()
        store.get("fake", scale)
        store.put("fake", scale, self._result())
        store.get("fake", scale)
        assert store.bytes_written > 0
        assert store.bytes_read > 0
        disk = store.disk_stats()
        assert disk["entries"] == 1
        assert disk["total_bytes"] >= store.bytes_written
        assert store.last_run_stats() is None
        store.save_stats()
        recorded = store.last_run_stats()
        assert recorded["hits"] == 1
        assert recorded["misses"] == 1

    def test_store_counters_reach_collector(self, tmp_path):
        collector = TelemetryCollector()
        store = ResultStore(tmp_path)
        scale = ExperimentScale.smoke()
        with use_telemetry(collector):
            store.get("fake", scale)
            store.put("fake", scale, self._result())
            store.get("fake", scale)
        assert collector.counters["store.misses"] == 1
        assert collector.counters["store.hits"] == 1
        assert collector.counters["store.bytes_written"] > 0
        assert collector.spans["store"]["count"] == 3


class TestCLITelemetry:
    def test_figure_json_telemetry_block(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "figure", "fig9", "--scale", "smoke", "--json",
            "--trace", str(trace_path), "--cache", str(tmp_path / "cache"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        telemetry = payload["telemetry"]
        assert telemetry["enabled"] is True
        assert telemetry["wall_seconds"] > 0
        assert telemetry["cache"]["misses"] == 1
        assert "generate" in telemetry["trace"]["spans"]
        assert "search" in telemetry["trace"]["spans"]
        trace = json.loads(trace_path.read_text())
        assert trace["schema"] == TRACE_SCHEMA_VERSION
        assert trace["tasks"]

    def test_cache_stats_subcommand(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "figure", "fig9", "--scale", "smoke", "--json",
            "--cache", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["disk"]["entries"] == 1
        assert payload["disk"]["total_bytes"] > 0
        assert payload["last_run"]["misses"] == 1

    def test_metrics_summary_on_stderr(self, tmp_path, capsys):
        assert main([
            "generate", "pa", "--nodes", "60", "--stubs", "2",
            "--cutoff", "8", "--seed", "5", "--metrics",
        ]) == 0
        captured = capsys.readouterr()
        # The stdout payload is unchanged (CI diffs it byte-wise).
        summary = json.loads(captured.out)
        assert "telemetry" not in summary
        assert "spans:" in captured.err
        assert "generate" in captured.err


class TestBenchCompare:
    def _run_bench(self, tmp_path, capsys, extra=()):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--only", "store", "--json",
            "--out", str(out), *extra,
        ])
        payload = json.loads(capsys.readouterr().out)
        return code, out, payload

    def test_bench_payload_schema(self, tmp_path, capsys):
        code, out, payload = self._run_bench(tmp_path, capsys)
        assert code == 0
        assert out.exists()
        assert payload["schema"] == 1
        assert payload["quick"] is True
        ids = [entry["id"] for entry in payload["benchmarks"]]
        assert ids == ["store/roundtrip"]
        assert all(entry["seconds"] > 0 for entry in payload["benchmarks"])

    def test_compare_ok_and_regression_exit_code(self, tmp_path, capsys):
        code, out, payload = self._run_bench(tmp_path, capsys)
        assert code == 0
        # Same machine, same work, generous tolerance: passes.
        code = main([
            "bench", "--quick", "--only", "store", "--no-write",
            "--compare", str(out), "--tolerance", "25.0",
        ])
        capsys.readouterr()
        assert code == 0
        # A baseline claiming the work used to be 1000x faster: regression.
        doctored = dict(payload)
        doctored["benchmarks"] = [
            dict(entry, seconds=entry["seconds"] / 1000.0)
            for entry in payload["benchmarks"]
        ]
        baseline_path = tmp_path / "doctored.json"
        baseline_path.write_text(json.dumps(doctored))
        code = main([
            "bench", "--quick", "--only", "store", "--no-write",
            "--compare", str(baseline_path), "--tolerance", "0.25",
        ])
        capsys.readouterr()
        assert code == 3

    def test_compare_fails_closed_on_disjoint_benchmarks(self, tmp_path, capsys):
        code, out, payload = self._run_bench(tmp_path, capsys)
        disjoint = dict(payload)
        disjoint["benchmarks"] = [
            {"id": "something/else", "seconds": 1.0, "repeats": 1, "meta": {}}
        ]
        baseline_path = tmp_path / "disjoint.json"
        baseline_path.write_text(json.dumps(disjoint))
        code = main([
            "bench", "--quick", "--only", "store", "--no-write",
            "--compare", str(baseline_path),
        ])
        capsys.readouterr()
        assert code == 3

    def test_compare_rejects_unknown_schema(self, tmp_path, capsys):
        baseline_path = tmp_path / "badschema.json"
        baseline_path.write_text(json.dumps({"schema": 999, "benchmarks": []}))
        code = main([
            "bench", "--quick", "--only", "store", "--no-write",
            "--compare", str(baseline_path),
        ])
        capsys.readouterr()
        assert code == 1
