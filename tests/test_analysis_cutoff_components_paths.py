"""Unit tests for natural cutoffs, connected components, and path statistics."""

from __future__ import annotations

import pytest

from repro.analysis.components import (
    component_of,
    connected_components,
    giant_component,
    giant_component_fraction,
    is_connected,
)
from repro.analysis.cutoff import (
    empirical_cutoff,
    natural_cutoff_aiello,
    natural_cutoff_dorogovtsev,
    natural_cutoff_pa,
)
from repro.analysis.paths import (
    average_shortest_path_length,
    diameter,
    expected_diameter_class,
    path_length_statistics,
)
from repro.core.errors import AnalysisError
from repro.core.graph import Graph


class TestCutoffEstimators:
    def test_pa_natural_cutoff(self):
        assert natural_cutoff_pa(10_000, 2) == pytest.approx(200.0)

    def test_dorogovtsev_vs_aiello_ordering(self):
        assert natural_cutoff_dorogovtsev(10_000, 2.5) > natural_cutoff_aiello(10_000, 2.5)

    def test_empirical_cutoff(self, star_graph):
        assert empirical_cutoff(star_graph) == 5
        assert empirical_cutoff([3, 9, 1]) == 9

    def test_empirical_cutoff_empty_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_cutoff([])


class TestComponents:
    def test_components_sorted_by_size(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        components = connected_components(graph)
        assert [len(c) for c in components] == [3, 2, 1]

    def test_component_of(self, two_component_graph):
        assert component_of(two_component_graph, 4) == {3, 4, 5}

    def test_component_of_missing_node(self, two_component_graph):
        with pytest.raises(AnalysisError):
            component_of(two_component_graph, 42)

    def test_giant_component_and_fraction(self, two_component_graph):
        assert len(giant_component(two_component_graph)) == 3
        assert giant_component_fraction(two_component_graph) == 0.5

    def test_is_connected(self, complete_graph, two_component_graph):
        assert is_connected(complete_graph)
        assert not is_connected(two_component_graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            is_connected(Graph())


class TestPathStatistics:
    def test_complete_graph(self, complete_graph):
        stats = path_length_statistics(complete_graph)
        assert stats.average == 1.0
        assert stats.diameter == 1
        assert stats.exact

    def test_path_graph(self, path_graph):
        stats = path_length_statistics(path_graph)
        assert stats.diameter == 4
        assert stats.average == pytest.approx(2.0)

    def test_sampled_estimate_close_to_exact(self, pa_graph_small):
        exact = path_length_statistics(pa_graph_small)
        sampled = path_length_statistics(pa_graph_small, sample_size=80, rng=1)
        assert not sampled.exact
        assert sampled.average == pytest.approx(exact.average, rel=0.15)

    def test_disconnected_graph_uses_giant_component(self, two_component_graph):
        stats = path_length_statistics(two_component_graph)
        assert stats.nodes_in_component == 3
        assert stats.diameter == 1

    def test_convenience_wrappers(self, path_graph):
        assert diameter(path_graph) == 4
        assert average_shortest_path_length(path_graph) == pytest.approx(2.0)

    def test_single_node_graph(self):
        graph = Graph(1)
        stats = path_length_statistics(graph)
        assert stats.average == 0.0
        assert stats.diameter == 0

    def test_invalid_sample_size(self, path_graph):
        with pytest.raises(AnalysisError):
            path_length_statistics(path_graph, sample_size=0)

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            path_length_statistics(Graph())


class TestDiameterClasses:
    def test_table1_rows(self):
        assert expected_diameter_class(2.5, 1) == "lnlnN"
        assert expected_diameter_class(3.0, 2) == "lnN/lnlnN"
        assert expected_diameter_class(3.0, 1) == "lnN"
        assert expected_diameter_class(3.7, 3) == "lnN"

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            expected_diameter_class(0.5, 1)
        with pytest.raises(AnalysisError):
            expected_diameter_class(2.5, 0)
