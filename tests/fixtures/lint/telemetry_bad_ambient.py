"""Known-bad: span and ambient-stack misuse (RPL401, RPL402).

A ``.span(...)`` opened outside a ``with`` never closes, so every later
span attaches under it; poking ``AmbientStack._items`` from outside
bypasses the per-thread isolation the class provides.
"""


def run_traced(tracer, network, stack):
    span = tracer.span("simulate")
    network.step()
    span.finish()

    tracer.span("flush")

    stack._items.append("fake-parent")
    storage = stack._local
    return storage
