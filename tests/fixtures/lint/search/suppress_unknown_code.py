"""Suppression fixture: naming a code the registry does not know (RPL003)."""


def walk_once(graph, rng):
    reached = []
    for node in graph.neighbor_set(0):  # repro-lint: disable=RPL999(no such rule)
        if rng.random() < 0.5:
            reached.append(node)
    return reached
