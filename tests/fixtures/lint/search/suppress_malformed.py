"""Suppression fixture: directives that fail to parse at all (RPL001)."""


def walk_once(graph, rng):
    reached = []
    # repro-lint: silence everything please
    for node in graph.neighbor_set(0):  # repro-lint: disable=RPL101
        if rng.random() < 0.5:
            reached.append(node)
    return reached
