"""Known-good: the PR-2 fix — forwarding over a defined-order sequence.

``iter_neighbors`` yields edge-insertion order on every backend, so the
draw sequence is identical across adj/CSR and python/jit tiers.  Sets are
still fine as *membership* structures (``visited``), and ``sorted(...)``
defines an order, so neither may be flagged.
"""


def forward_probabilistically(graph, node, rng, forward_probability):
    """Forward to each neighbor independently, in defined order."""
    forwarded = []
    for neighbor in graph.iter_neighbors(node):
        if rng.random() < forward_probability:
            forwarded.append(neighbor)
    return forwarded


def flood(graph, source, ttl, rng):
    """Membership sets and sorted() iteration are both allowed."""
    visited = {source}
    frontier = [source]
    for _ in range(ttl):
        next_frontier = []
        for node in frontier:
            for neighbor in graph.iter_neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return sorted(visited)
