"""Suppression fixture: an empty justification is rejected (RPL002)."""


def walk_once(graph, rng):
    reached = []
    for node in graph.neighbor_set(0):  # repro-lint: disable=RPL101()
        if rng.random() < 0.5:
            reached.append(node)
    return reached
