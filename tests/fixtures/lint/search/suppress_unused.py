"""Suppression fixture: suppressing a rule that never fires (RPL004)."""


def walk_once(graph, rng):
    total = 0.0
    for node in graph.nodes_in_order():  # repro-lint: disable=RPL101(nothing unordered here, so this directive is dead weight)
        total += rng.random()
    return total
