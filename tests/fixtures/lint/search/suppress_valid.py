"""Suppression fixture: a justified same-line disable silences the finding."""


def walk_once(graph, rng):
    reached = []
    for node in graph.neighbor_set(0):  # repro-lint: disable=RPL101(fixture: pretend this order is provably draw-free)
        if rng.random() < 0.5:
            reached.append(node)
    return reached
