"""Known-bad: the PR-2 probabilistic-flooding set-order bug, reconstructed.

The original bug: the PF forwarder iterated a *set* of neighbors while
drawing one ``rng.random()`` per neighbor.  Set order is process-salted,
so the adj backend and the CSR backend (edge-insertion order) consumed the
shared Mersenne-Twister stream in different orders — identical seeds,
silently divergent results.  RPL101 must flag the ``set`` iteration on
line 18 (and the materialised copy below it).
"""


def forward_probabilistically(graph, node, rng, forward_probability):
    """Forward the query to each neighbor independently with probability p."""
    forwarded = []
    # BUG (reconstructed): neighbor_set() returns a set; iterating it
    # consumes one draw per neighbor in process-salted order.
    for neighbor in graph.neighbor_set(node):
        if rng.random() < forward_probability:
            forwarded.append(neighbor)
    return forwarded


def forward_from_local_set(graph, node, rng, forward_probability):
    """Same bug via a local bound to a set, then materialised."""
    candidates = set(graph.neighbors(node))
    ordered = list(candidates)
    return [neighbor for neighbor in ordered if rng.random() < forward_probability]
