"""Known-good: a ``maybe_njit`` kernel inside the numba subset.

Plain positional parameters, array-and-scalar locals, mutation only
through the arguments — identical behaviour compiled or interpreted.
"""


@maybe_njit(cache=True)
def accumulate_degrees(indptr, indices, out):
    for node in range(out.shape[0]):
        out[node] = indptr[node + 1] - indptr[node]
    total = 0
    for node in range(out.shape[0]):
        total += out[node]
    return total


def helper_not_a_kernel(values):
    """Undecorated helpers may use any Python they like."""
    try:
        return {value: f"v{value}" for value in values}
    except TypeError:
        return {}
