"""Known-good: spans as context managers, ambient stack via its API."""


def run_traced(tracer, network, stack):
    with tracer.span("simulate"):
        network.step()
        with tracer.span("flush", kind="io"):
            network.flush()

    stack.push("parent")
    try:
        current = stack.top()
    finally:
        stack.pop()
    return current


class StackLike:
    """Inside a class, ``self._items`` / ``self._local`` are fair game."""

    def __init__(self):
        self._items = []
        self._local = None

    def push(self, value):
        self._items.append(value)
