"""Known-bad: dataclass carriers that cannot cross the pool pickle boundary.

``ParallelExecutor`` falls back to in-process execution when a task fails
to pickle, so every construct here silently turns a ``--jobs 8`` run
serial instead of erroring (RPL301), and a lambda ``Task`` callable can
never be distributed at all (RPL302).
"""

from dataclasses import dataclass, field
from threading import Lock


@dataclass
class BrokenSpec:
    name: str
    score_fn = lambda realization: realization.hops
    on_done: object = field(default=lambda result: result)
    guard: object = field(default_factory=lambda: Lock())

    def attach(self, stream):
        self.handle = open("results.ndjson", "a")
        self.lock = Lock()


def submit_broken(executor, spec):
    task = Task(lambda: spec.name, label="inline")
    other = Task(fn=lambda realization: realization.hops, label="score")
    return executor.submit(task), executor.submit(other)
