"""Known-good: picklable dataclass carriers and module-level task callables."""

from dataclasses import dataclass, field


def score_realization(realization):
    return realization.hops


@dataclass
class CleanSpec:
    name: str
    seeds: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)


class StatefulReporter:
    """Non-dataclass engine classes may hold locks; they never cross the pool."""

    def __init__(self):
        from threading import Lock

        self._emit_lock = Lock()


def submit_clean(executor, spec):
    task = Task(score_realization, label=spec.name)
    return executor.submit(task)
