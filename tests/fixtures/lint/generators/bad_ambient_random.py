"""Known-bad: ambient randomness inside the RNG-scoped draw path (RPL103).

Every draw must come from the explicitly-threaded ``RandomSource`` — the
module-level ``random`` and ``numpy.random`` singletons are process-global
state that silently desynchronises the pinned draw stream.
"""

import random
from random import shuffle

import numpy as np


def attach_randomly(graph, node, degree):
    targets = []
    for _ in range(degree):
        targets.append(random.randrange(graph.number_of_nodes))
    return targets


def permute_nodes(nodes):
    shuffle(nodes)
    return nodes


def noise_vector(size):
    return np.random.random(size)
