"""Known-good: explicit RandomSource threading, defined-order iteration."""


def attach_preferentially(graph, node, degree, rng, attachment_targets):
    targets = []
    while len(targets) < degree:
        candidate = attachment_targets[rng.randrange(len(attachment_targets))]
        if candidate != node and candidate not in targets:
            targets.append(candidate)
    return targets


def degree_histogram(degree_of):
    histogram = {}
    for node in sorted(degree_of):
        histogram[degree_of[node]] = histogram.get(degree_of[node], 0) + 1
    return histogram
