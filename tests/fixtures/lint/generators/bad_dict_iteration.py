"""Known-bad: dict iteration interleaved with draws (RPL102).

Dict insertion order is deterministic *within* a process, but here the
dict is keyed by values whose arrival order differs across backends, so
iterating it while consuming draws splits the stream differently per
backend.
"""


def rewire(graph, degree_of, rng):
    chosen = []
    for node in degree_of.keys():
        if rng.random() < 0.5:
            chosen.append(node)
    for node, degree in degree_of.items():
        if degree and rng.random() < 0.1:
            chosen.append(node)
    return chosen
