"""Known-bad: a ``maybe_njit`` kernel that drifted outside the numba subset.

Each construct below runs fine interpreted (the no-numba fallback) and
breaks nopython compilation — the asymmetry RPL201-205 exist to catch.
The decorator is matched by name; this file is parsed, never imported.
"""

COUNTERS = None


@maybe_njit(cache=True)
def broken_kernel(values, out, *extras, scale=1.0):
    global COUNTERS
    try:
        import math

        lookup = {0: "zero", 1: "one"}
        seen = {0, 1}
        label = f"kernel:{scale}"
    except ValueError:
        label = "none"

    def helper(x):
        return x * scale

    transform = lambda x: helper(x) + 1.0
    COUNTERS.calls = COUNTERS.calls + 1
    for i in range(values.shape[0]):
        out[i] = transform(values[i])
    del label
    return out
