"""Tests for the parallel experiment engine (executors, store, suite, CLI).

The load-bearing guarantees:

* ``ParallelExecutor`` output is **numerically identical** to
  ``SerialExecutor`` output (explicit per-task seeds + submission-order
  results), verified end to end on a real figure experiment;
* the on-disk :class:`~repro.engine.store.ResultStore` round-trips results
  and serves cache hits without recomputing;
* the suite scheduler resumes from the store.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.errors import ExperimentError
from repro.engine.executor import (
    ParallelExecutor,
    SerialExecutor,
    active_executor,
    executor_from_jobs,
    use_executor,
)
from repro.engine.progress import ProgressReporter
from repro.engine.store import ResultStore
from repro.engine.tasks import Task, run_suite
from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale, run_realizations


# Module-level task bodies: picklable, so they can cross process boundaries.
def _square(value: int) -> int:
    return value * value


def _seed_identity(seed: int) -> int:
    return seed


def _seed_vector(subject: int, seed: int):
    return [float(seed % 101), float(seed % 7)]


def _result_json(result: ExperimentResult) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


class TestTask:
    def test_run_executes_callable(self):
        task = Task(fn=_square, args=(7,), key="sq")
        assert task.run() == 49

    def test_module_level_function_is_picklable(self):
        assert Task(fn=_square, args=(3,)).is_picklable()

    def test_closure_is_not_picklable(self):
        assert not Task(fn=lambda: 1).is_picklable()


class TestSerialExecutor:
    def test_results_in_submission_order(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(5)]
        assert SerialExecutor().run(tasks) == [0, 1, 4, 9, 16]

    def test_progress_receives_every_task(self):
        reporter = ProgressReporter()
        reporter.experiment_started("x")
        SerialExecutor().run([Task(fn=_square, args=(i,), key=f"t{i}") for i in range(3)], reporter)
        reporter.experiment_finished("x")
        assert reporter.timings[-1].tasks == 3


class TestParallelExecutor:
    def test_matches_serial_and_preserves_order(self):
        tasks = [Task(fn=_square, args=(i,)) for i in range(8)]
        with ParallelExecutor(jobs=2) as pool:
            assert pool.run(tasks) == SerialExecutor().run(tasks)

    def test_single_task_runs_in_process(self):
        with ParallelExecutor(jobs=2) as pool:
            assert pool.run([Task(fn=_square, args=(4,))]) == [16]

    def test_unpicklable_tasks_fall_back_to_serial(self):
        captured = []
        tasks = [Task(fn=lambda i=i: captured.append(i) or i) for i in range(3)]
        with ParallelExecutor(jobs=2) as pool:
            with pytest.warns(RuntimeWarning, match="non-picklable"):
                assert pool.run(tasks) == [0, 1, 2]
        assert captured == [0, 1, 2]

    def test_unpicklable_straggler_degrades_individually(self):
        # First task picklable (the probe passes), a later one is not: that
        # task alone reruns in-process, the batch still returns in order.
        tasks = [Task(fn=_square, args=(3,)), Task(fn=lambda: 5), Task(fn=_square, args=(4,))]
        with ParallelExecutor(jobs=2) as pool:
            assert pool.run(tasks) == [9, 5, 16]

    def test_rejects_zero_workers(self):
        with pytest.raises(ExperimentError):
            ParallelExecutor(jobs=0)

    def test_executor_from_jobs(self):
        assert isinstance(executor_from_jobs(None), SerialExecutor)
        assert isinstance(executor_from_jobs(1), SerialExecutor)
        parallel = executor_from_jobs(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.jobs == 3
        parallel.close()


class TestExecutorContext:
    def test_default_is_serial(self):
        assert isinstance(active_executor(), SerialExecutor)

    def test_use_executor_installs_and_restores(self):
        pool = ParallelExecutor(jobs=2)
        with use_executor(pool) as active:
            assert active is pool
            assert active_executor() is pool
        assert active_executor() is not pool
        pool.close()

    def test_use_executor_none_keeps_current(self):
        with use_executor(None) as active:
            assert active is active_executor()


class TestRunRealizationsThroughEngine:
    def test_parallel_equals_serial(self):
        scale = ExperimentScale(realizations=4)
        serial = run_realizations(
            scale, _seed_identity, _seed_vector, label="engine", executor=SerialExecutor()
        )
        with ParallelExecutor(jobs=2) as pool:
            parallel = run_realizations(
                scale, _seed_identity, _seed_vector, label="engine", executor=pool
            )
        assert parallel == serial

    def test_uses_ambient_executor_by_default(self):
        scale = ExperimentScale(realizations=2)
        baseline = run_realizations(scale, _seed_identity, _seed_vector, label="ambient")
        with ParallelExecutor(jobs=2) as pool:
            with use_executor(pool):
                ambient = run_realizations(scale, _seed_identity, _seed_vector, label="ambient")
        assert ambient == baseline


class TestResultStore:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="fake",
            title="fake experiment",
            series=[Series(label="a", x=[1, 2], y=[0.5, 1.5], metadata={"m": 1})],
            parameters={"name": "smoke"},
            notes="round-trip me",
        )

    def test_round_trip(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        assert not store.contains("fake", smoke_scale)
        assert store.get("fake", smoke_scale) is None
        store.put("fake", smoke_scale, self._result())
        assert store.contains("fake", smoke_scale)
        loaded = store.get("fake", smoke_scale)
        assert loaded is not None
        assert _result_json(loaded) == _result_json(self._result())
        stats = store.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        assert stats["bytes_read"] > 0
        assert stats["bytes_written"] > 0

    def test_key_depends_on_scale_seed_and_extra(self, smoke_scale):
        base = ResultStore.key_for("fig9", smoke_scale)
        assert ResultStore.key_for("fig9", smoke_scale) == base
        assert ResultStore.key_for("fig10", smoke_scale) != base
        assert ResultStore.key_for("fig9", smoke_scale.with_seed(1)) != base
        assert ResultStore.key_for("fig9", ExperimentScale.small()) != base
        assert ResultStore.key_for("fig9", smoke_scale, extra={"v": 2}) != base

    def test_artifacts_on_disk(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        directory = store.put("fake", smoke_scale, self._result())
        assert (directory / "result.json").exists()
        assert (directory / "result.csv").exists()
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["experiment_id"] == "fake"
        assert meta["scale"]["name"] == "smoke"

    def test_corrupted_entry_is_a_miss(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        directory = store.put("fake", smoke_scale, self._result())
        (directory / "result.json").write_text("{ truncated")
        assert store.get("fake", smoke_scale) is None

    def test_fetch_or_run_runs_exactly_once(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        calls = []

        def runner():
            calls.append(1)
            return self._result()

        first, from_cache_first = store.fetch_or_run("fake", smoke_scale, runner)
        second, from_cache_second = store.fetch_or_run("fake", smoke_scale, runner)
        assert (from_cache_first, from_cache_second) == (False, True)
        assert len(calls) == 1
        assert _result_json(first) == _result_json(second)


class TestEngineDeterminism:
    """The acceptance bar: parallel figure runs are byte-identical to serial."""

    def test_fig9_parallel_identical_to_serial(self, smoke_scale):
        # Two realizations per curve so the batches genuinely cross process
        # boundaries (at realizations=1 a batch degenerates to in-process).
        scale = replace(smoke_scale, realizations=2)
        serial = run_experiment("fig9", scale=scale, executor=SerialExecutor())
        with ParallelExecutor(jobs=2) as pool:
            parallel = run_experiment("fig9", scale=scale, executor=pool)
        assert _result_json(parallel) == _result_json(serial)

    def test_progress_counts_realization_tasks(self, smoke_scale):
        """Per-task events reach the reporter through the ambient context."""
        reporter = ProgressReporter()
        run_experiment("fig9", scale=smoke_scale, progress=reporter)
        timing = reporter.timings[-1]
        assert timing.experiment_id == "fig9"
        # fig9 at smoke scale: 3 models x 2 stub values x 2 cutoffs, one
        # realization each.
        assert timing.tasks == 12
        assert timing.task_seconds > 0

    def test_cached_rerun_skips_recompute(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        first = run_experiment("fig9", scale=smoke_scale, store=store)
        reporter = ProgressReporter()
        second = run_experiment("fig9", scale=smoke_scale, store=store, progress=reporter)
        assert store.hits == 1
        assert reporter.timings[-1].from_cache is True
        assert reporter.timings[-1].tasks == 0  # nothing was recomputed
        assert _result_json(first) == _result_json(second)


class TestSuiteScheduler:
    def test_suite_runs_and_resumes_from_store(self, tmp_path, smoke_scale):
        store = ResultStore(tmp_path)
        first = run_suite(["table2", "natural_cutoff"], scale=smoke_scale, store=store)
        assert [entry.experiment_id for entry in first.entries] == ["table2", "natural_cutoff"]
        assert first.cache_hits == 0
        second = run_suite(["table2", "natural_cutoff"], scale=smoke_scale, store=store)
        assert second.cache_hits == 2
        assert all(entry.from_cache for entry in second.entries)
        assert _result_json(second.results()["table2"]) == _result_json(
            first.results()["table2"]
        )
        assert "2/2 from cache" in second.summary()

    def test_unknown_experiment_rejected(self, smoke_scale):
        with pytest.raises(ExperimentError):
            run_suite(["fig99"], scale=smoke_scale)


class TestEngineCLI:
    def test_figure_with_jobs_and_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        code = main(
            ["figure", "table2", "--scale", "smoke", "--jobs", "2",
             "--cache", str(cache)]
        )
        assert code == 0
        assert "table2" in capsys.readouterr().out
        # Re-run: served from the store.
        assert main(["figure", "table2", "--scale", "smoke", "--cache", str(cache)]) == 0
        captured = capsys.readouterr()
        assert "table2" in captured.out
        assert "served from cache" in captured.err

    def test_suite_subcommand(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        code = main(
            ["suite", "--scale", "smoke", "--only", "table2",
             "--cache", str(tmp_path / "cache"), "--out", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "table2.json").exists()
        assert (out_dir / "table2.csv").exists()
        output = capsys.readouterr().out
        assert "table2" in output
        assert "total" in output

    def test_parser_knows_suite(self):
        from repro.cli import build_parser

        assert "suite" in build_parser().format_help()


class TestAmbientStackThreadLocality:
    """The ambient context stacks must isolate threads (plan distribution)."""

    def test_push_in_one_thread_invisible_in_another(self):
        import threading

        from repro.core.ambient import AmbientStack

        stack: AmbientStack = AmbientStack()
        stack.push("outer")
        seen = {}

        def worker():
            seen["before"] = stack.top("default")
            stack.push("inner")
            seen["after"] = stack.top("default")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == {"before": "default", "after": "inner"}
        assert stack.top("default") == "outer"

    def test_use_executor_is_thread_local(self):
        import threading

        from repro.engine.executor import active_executor, use_executor

        serial = SerialExecutor()
        results = {}

        def worker():
            results["ambient"] = active_executor()

        with use_executor(serial):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert active_executor() is serial
        # The worker thread saw the default, not the caller's context.
        assert results["ambient"] is not serial


class TestScenarioPlanDistribution:
    """A multi-panel scenario must parallelize under --jobs, byte-identically.

    Panels used to serialize: each series barriers on its own realization
    batch, idling the pool.  _run_plans spreads the compiled plans over a
    thread pool (tasks still execute in the shared process pool), and the
    result must be byte-identical to the serial order.
    """

    def _spec(self):
        from repro.scenarios import ScenarioSpec

        return ScenarioSpec.from_dict({
            "id": "panel-dist",
            "title": "panel distribution probe",
            "topology": {"stubs": 1, "hard_cutoff": 10},
            "panels": [
                {"topology": {"model": "pa"},
                 "series": [{"label": "pa P(k)",
                             "measurement": {"kind": "degree-distribution"}}]},
                {"topology": {"model": "cm", "exponent": 2.5},
                 "series": [{"label": "cm P(k)",
                             "measurement": {"kind": "degree-distribution"}}]},
                {"topology": {"model": "pa"},
                 "series": [{"label": "pa NF",
                             "measurement": {"kind": "search-curve",
                                             "algorithm": "nf"}}]},
            ],
        })

    def test_jobs_byte_identical_to_serial(self, smoke_scale):
        from repro.scenarios import run_scenario

        serial = run_scenario(self._spec(), scale=smoke_scale)
        with ParallelExecutor(jobs=2) as executor:
            parallel = run_scenario(
                self._spec(), scale=smoke_scale, executor=executor
            )
        assert [series.as_dict() for series in serial.series] == [
            series.as_dict() for series in parallel.series
        ]

    def test_plans_actually_distribute_across_threads(self, smoke_scale, monkeypatch):
        import threading

        from repro.scenarios import compile as compile_module
        from repro.scenarios import run_scenario

        seen_threads = []
        original = compile_module.run_series_plan

        def recording(plan, scale):
            seen_threads.append(threading.current_thread().name)
            return original(plan, scale)

        monkeypatch.setattr(compile_module, "run_series_plan", recording)
        with ParallelExecutor(jobs=2) as executor:
            run_scenario(self._spec(), scale=smoke_scale, executor=executor)
        assert len(seen_threads) == 3
        assert all(name.startswith("repro-plan") for name in seen_threads)

    def test_serial_executor_keeps_plans_in_process(self, smoke_scale, monkeypatch):
        import threading

        from repro.scenarios import compile as compile_module
        from repro.scenarios import run_scenario

        seen_threads = []
        original = compile_module.run_series_plan

        def recording(plan, scale):
            seen_threads.append(threading.current_thread().name)
            return original(plan, scale)

        monkeypatch.setattr(compile_module, "run_series_plan", recording)
        run_scenario(self._spec(), scale=smoke_scale)
        assert seen_threads == [threading.main_thread().name] * 3

    def test_suite_jobs_distributes_scenario_panels(self, smoke_scale):
        """`repro suite --jobs` path: run_suite with a shared pool must
        reproduce the serial suite byte for byte for a multi-panel
        experiment (fig1 has three cutoff series)."""
        serial_report = run_suite(["fig1"], scale=smoke_scale)
        with ParallelExecutor(jobs=2) as executor:
            parallel_report = run_suite(["fig1"], scale=smoke_scale, executor=executor)
        serial_result = serial_report.results()["fig1"]
        parallel_result = parallel_report.results()["fig1"]
        assert [series.as_dict() for series in serial_result.series] == [
            series.as_dict() for series in parallel_result.series
        ]
