"""Unit tests for the search-curve metrics and NF↔RW normalization."""

from __future__ import annotations

import pytest

from repro.core.errors import SearchError
from repro.core.graph import Graph
from repro.search.flooding import FloodingSearch
from repro.search.metrics import (
    SearchCurve,
    average_search_curve,
    normalized_walk_curve,
    search_curve,
    select_sources,
)
from repro.search.normalized_flooding import NormalizedFloodingSearch


class TestSearchCurve:
    def test_flooding_curve_on_complete_graph(self, complete_graph):
        curve = search_curve(complete_graph, FloodingSearch(), [1, 2], queries=4, rng=1)
        assert curve.mean_hits == [5.0, 5.0]
        assert curve.algorithm == "fl"
        assert curve.queries == 4

    def test_curve_is_monotone(self, pa_graph_cutoff):
        curve = search_curve(
            pa_graph_cutoff, FloodingSearch(), [1, 2, 3, 4, 5], queries=10, rng=2
        )
        assert all(b >= a for a, b in zip(curve.mean_hits, curve.mean_hits[1:]))
        assert all(b >= a for a, b in zip(curve.mean_messages, curve.mean_messages[1:]))

    def test_ttl_values_sorted_in_output(self, complete_graph):
        curve = search_curve(complete_graph, FloodingSearch(), [3, 1, 2], queries=2, rng=1)
        assert curve.ttl_values == [1, 2, 3]

    def test_hits_at_and_messages_at(self, complete_graph):
        curve = search_curve(complete_graph, FloodingSearch(), [1, 2], queries=2, rng=1)
        assert curve.hits_at(1) == 5.0
        assert curve.messages_at(2) >= curve.messages_at(1)
        with pytest.raises(SearchError):
            curve.hits_at(9)

    def test_explicit_sources(self, star_graph):
        curve = search_curve(
            star_graph, FloodingSearch(), [1], sources=[0, 0, 0], rng=1
        )
        assert curve.mean_hits == [5.0]
        assert curve.queries == 3

    def test_empty_ttl_values_rejected(self, star_graph):
        with pytest.raises(SearchError):
            search_curve(star_graph, FloodingSearch(), [], queries=2)

    def test_round_trip_dict(self):
        curve = SearchCurve("nf", [1, 2], [3.0, 4.0], [5.0, 6.0], std_hits=[0.1, 0.2],
                            queries=7, metadata={"k": 1})
        clone = SearchCurve.from_dict(curve.as_dict())
        assert clone.mean_hits == curve.mean_hits
        assert clone.metadata == curve.metadata

    def test_reproducible_with_seed(self, pa_graph_cutoff):
        a = search_curve(pa_graph_cutoff, NormalizedFloodingSearch(k_min=2), [2, 4],
                         queries=10, rng=5)
        b = search_curve(pa_graph_cutoff, NormalizedFloodingSearch(k_min=2), [2, 4],
                         queries=10, rng=5)
        assert a.mean_hits == b.mean_hits


class TestSelectSources:
    def test_count_and_membership(self, pa_graph_small):
        sources = select_sources(pa_graph_small, 25, rng=3)
        assert len(sources) == 25
        assert all(node in pa_graph_small for node in sources)

    def test_empty_graph_rejected(self):
        with pytest.raises(SearchError):
            select_sources(Graph(), 3, rng=1)


class TestNormalizedWalkCurve:
    def test_budget_matches_nf_messages(self, pa_graph_cutoff):
        """RW hits are reported at the NF message budget, so RW messages at a
        given τ should be close to (and no more than) the NF messages."""
        nf = search_curve(
            pa_graph_cutoff, NormalizedFloodingSearch(k_min=2), [2, 4, 6],
            queries=15, rng=4,
        )
        rw = normalized_walk_curve(pa_graph_cutoff, [2, 4, 6], k_min=2, queries=15, rng=4)
        assert rw.algorithm == "rw"
        for nf_messages, rw_messages in zip(nf.mean_messages, rw.mean_messages):
            assert rw_messages <= nf_messages * 1.5 + 5

    def test_monotone_hits(self, pa_graph_cutoff):
        curve = normalized_walk_curve(pa_graph_cutoff, [2, 4, 6, 8], k_min=2,
                                      queries=10, rng=6)
        assert all(b >= a for a, b in zip(curve.mean_hits, curve.mean_hits[1:]))

    def test_metadata_records_normalization(self, pa_graph_cutoff):
        curve = normalized_walk_curve(pa_graph_cutoff, [2], k_min=2, queries=5, rng=7)
        assert curve.metadata["normalization"] == "nf_messages"

    def test_empty_ttl_rejected(self, pa_graph_cutoff):
        with pytest.raises(SearchError):
            normalized_walk_curve(pa_graph_cutoff, [], queries=3)


class TestAverageSearchCurve:
    def test_element_wise_mean(self):
        a = SearchCurve("fl", [1, 2], [2.0, 4.0], [1.0, 2.0], queries=5)
        b = SearchCurve("fl", [1, 2], [4.0, 8.0], [3.0, 6.0], queries=5)
        avg = average_search_curve([a, b])
        assert avg.mean_hits == [3.0, 6.0]
        assert avg.mean_messages == [2.0, 4.0]
        assert avg.queries == 10
        assert avg.metadata["realizations"] == 2

    def test_mismatched_algorithms_rejected(self):
        a = SearchCurve("fl", [1], [1.0], [1.0])
        b = SearchCurve("nf", [1], [1.0], [1.0])
        with pytest.raises(SearchError):
            average_search_curve([a, b])

    def test_mismatched_ttl_grid_rejected(self):
        a = SearchCurve("fl", [1], [1.0], [1.0])
        b = SearchCurve("fl", [2], [1.0], [1.0])
        with pytest.raises(SearchError):
            average_search_curve([a, b])

    def test_empty_rejected(self):
        with pytest.raises(SearchError):
            average_search_curve([])
