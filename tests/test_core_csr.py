"""Property tests for the frozen CSR graph backend (:mod:`repro.core.csr`)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.csr import (
    CSRGraph,
    batch_flood_curves,
    batch_random_walks,
    flood_curve,
    flood_levels,
)
from repro.core.errors import GraphError, NodeNotFoundError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.cm import generate_cm
from repro.generators.pa import generate_pa
from repro.search.flooding import flood

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=min(60, len(possible_edges)))
        if possible_edges
        else st.just([])
    )
    return Graph.from_edges(n, edges)


@pytest.fixture(scope="module")
def pa_graph() -> Graph:
    return generate_pa(300, stubs=2, hard_cutoff=12, seed=42)


@pytest.fixture(scope="module")
def cm_graph() -> Graph:
    return generate_cm(300, exponent=2.5, min_degree=2, hard_cutoff=25, seed=43)


class TestFreezeRoundTrip:
    @common_settings
    @given(random_graphs())
    def test_edges_round_trip(self, graph):
        frozen = graph.freeze()
        rebuilt = Graph.from_edges(graph.number_of_nodes, frozen.edges())
        assert rebuilt == graph
        assert frozen == graph
        assert graph == frozen

    @common_settings
    @given(random_graphs())
    def test_degree_and_neighbor_agreement(self, graph):
        frozen = graph.freeze()
        assert frozen.number_of_nodes == graph.number_of_nodes
        assert frozen.number_of_edges == graph.number_of_edges
        assert frozen.total_degree == graph.total_degree
        assert frozen.degree_sequence() == graph.degree_sequence()
        for node in graph.nodes():
            assert frozen.degree(node) == graph.degree(node)
            # Exact order, not just the same set: the defined neighbor
            # order is what keeps seeded draws identical across backends.
            assert frozen.neighbors(node) == graph.neighbors(node)
            assert frozen.neighbor_set(node) == graph.neighbor_set(node)

    @common_settings
    @given(random_graphs())
    def test_thaw_round_trip(self, graph):
        assert graph.freeze().thaw() == graph

    def test_stats_and_degree_extremes(self, pa_graph):
        frozen = pa_graph.freeze()
        assert frozen.stats() == pa_graph.stats()
        assert frozen.min_degree() == pa_graph.min_degree()
        assert frozen.max_degree() == pa_graph.max_degree()
        assert frozen.mean_degree() == pytest.approx(pa_graph.mean_degree())
        assert frozen.degrees() == pa_graph.degrees()

    def test_has_edge_agreement(self, cm_graph):
        frozen = cm_graph.freeze()
        for u, v in list(cm_graph.edges())[:50]:
            assert frozen.has_edge(u, v) and frozen.has_edge(v, u)
        assert not frozen.has_edge(0, 0)
        missing = [
            (u, v)
            for u in range(20)
            for v in range(u + 1, 20)
            if not cm_graph.has_edge(u, v)
        ]
        for u, v in missing[:20]:
            assert not frozen.has_edge(u, v)
        assert not frozen.has_edge(0, 10**6)

    def test_nodes_iteration_and_membership(self, pa_graph):
        frozen = pa_graph.freeze()
        assert frozen.nodes() == pa_graph.nodes()
        assert list(frozen) == list(pa_graph)
        assert len(frozen) == len(pa_graph)
        assert 0 in frozen and pa_graph.number_of_nodes not in frozen
        assert "nope" not in frozen

    def test_to_networkx(self, pa_graph):
        frozen = pa_graph.freeze()
        nx_graph = frozen.to_networkx()
        assert nx_graph.number_of_nodes() == pa_graph.number_of_nodes
        assert nx_graph.number_of_edges() == pa_graph.number_of_edges


class TestSparseIds:
    """Graphs whose node ids are not the dense range (e.g. after removals)."""

    @pytest.fixture()
    def sparse_graph(self) -> Graph:
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        graph.remove_node(2)
        return graph

    def test_round_trip(self, sparse_graph):
        frozen = sparse_graph.freeze()
        assert frozen.nodes() == sparse_graph.nodes()
        assert set(frozen.edges()) == set(sparse_graph.edges())
        assert frozen == sparse_graph
        for node in sparse_graph.nodes():
            assert frozen.neighbors(node) == sparse_graph.neighbors(node)

    def test_missing_nodes_raise(self, sparse_graph):
        frozen = sparse_graph.freeze()
        assert not frozen.has_node(2)
        with pytest.raises(NodeNotFoundError):
            frozen.degree(2)
        with pytest.raises(NodeNotFoundError):
            frozen.neighbors(2)

    def test_random_node_draw_parity(self, sparse_graph):
        frozen = sparse_graph.freeze()
        for seed in range(20):
            assert frozen.random_node(RandomSource(seed)) == sparse_graph.random_node(
                RandomSource(seed)
            )


class TestImmutability:
    def test_mutation_rejected(self, pa_graph):
        frozen = pa_graph.freeze()
        with pytest.raises(GraphError):
            frozen.add_node()
        with pytest.raises(GraphError):
            frozen.add_nodes(3)
        with pytest.raises(GraphError):
            frozen.add_edge(0, 5)
        with pytest.raises(GraphError):
            frozen.remove_node(0)
        with pytest.raises(GraphError):
            frozen.remove_edge(0, 1)

    def test_arrays_read_only(self, pa_graph):
        frozen = pa_graph.freeze()
        with pytest.raises(ValueError):
            frozen.degree_array()[0] = 99
        with pytest.raises(ValueError):
            frozen.neighbor_array(0)[0] = 99
        with pytest.raises(ValueError):
            frozen.edge_source_rows()[0] = 99

    def test_freeze_and_copy_are_idempotent(self, pa_graph):
        frozen = pa_graph.freeze()
        assert frozen.freeze() is frozen
        assert frozen.copy() is frozen

    def test_snapshot_detached_from_source(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2)])
        frozen = graph.freeze()
        graph.add_edge(2, 3)
        assert frozen.number_of_edges == 2
        assert not frozen.has_edge(2, 3)
        assert graph.number_of_edges == 3


class TestPickling:
    @common_settings
    @given(random_graphs())
    def test_pickle_round_trip(self, graph):
        frozen = graph.freeze()
        clone = pickle.loads(pickle.dumps(frozen))
        assert clone == frozen
        assert clone.degree_sequence() == frozen.degree_sequence()
        for node in list(graph.nodes())[:10]:
            assert clone.neighbors(node) == frozen.neighbors(node)

    def test_unpickled_graph_still_immutable(self, pa_graph):
        clone = pickle.loads(pickle.dumps(pa_graph.freeze()))
        with pytest.raises(GraphError):
            clone.add_edge(0, 1)
        assert not clone.degree_array().flags.writeable

    def test_caches_not_pickled(self, pa_graph):
        frozen = pa_graph.freeze()
        frozen.iter_neighbors(0)  # populate the lazy list cache
        frozen.edge_source_rows()
        payload = pickle.dumps(frozen)
        # The pickle holds only the three defining arrays, so it stays
        # compact no matter which caches the source instance materialised.
        bare = pickle.dumps(CSRGraph(frozen._indptr, frozen._indices))
        assert abs(len(payload) - len(bare)) < 128


class TestRandomPrimitives:
    def test_random_neighbor_draw_parity(self, pa_graph):
        frozen = pa_graph.freeze()
        for seed in range(10):
            for node in (0, 3, 77):
                assert frozen.random_neighbor(
                    node, RandomSource(seed)
                ) == pa_graph.random_neighbor(node, RandomSource(seed))

    def test_random_neighbor_isolated(self):
        graph = Graph(2)
        frozen = graph.freeze()
        assert frozen.random_neighbor(0, RandomSource(1)) is None

    def test_random_node_dense_parity(self, pa_graph):
        frozen = pa_graph.freeze()
        for seed in range(10):
            assert frozen.random_node(RandomSource(seed)) == pa_graph.random_node(
                RandomSource(seed)
            )


class TestEmptyAndTiny:
    def test_empty_graph(self):
        frozen = Graph().freeze()
        assert frozen.number_of_nodes == 0
        assert frozen.number_of_edges == 0
        assert frozen.min_degree() == 0
        assert frozen.max_degree() == 0
        assert frozen.mean_degree() == 0.0
        assert frozen.edges() == []
        with pytest.raises(GraphError):
            frozen.random_node(RandomSource(1))

    def test_isolated_nodes(self):
        frozen = Graph(3).freeze()
        assert frozen.degree_sequence() == [0, 0, 0]
        assert frozen.neighbors(1) == []


class TestFloodKernels:
    @common_settings
    @given(random_graphs(), st.integers(min_value=0, max_value=6))
    def test_flood_curve_matches_reference(self, graph, ttl):
        frozen = graph.freeze()
        source = 0
        reference = flood(graph, source, ttl)
        levels, hits, messages = flood_curve(frozen, frozen._row_of(source), ttl)
        assert [0] + hits.tolist() == reference.hits_per_ttl
        assert [0] + messages.tolist() == reference.messages_per_ttl
        reached = {frozen._id_of(row) for row in np.nonzero(levels >= 0)[0]}
        assert reached == reference.visited

    def test_flood_levels_are_bfs_distances(self, pa_graph):
        frozen = pa_graph.freeze()
        levels = flood_levels(frozen, 0, 50)
        nx_graph = pa_graph.to_networkx()
        import networkx as nx

        distances = nx.single_source_shortest_path_length(nx_graph, 0)
        for node in pa_graph.nodes():
            expected = distances.get(node, -1)
            assert levels[node] == expected

    def test_flood_levels_respect_cap(self, pa_graph):
        frozen = pa_graph.freeze()
        capped = flood_levels(frozen, 0, 2)
        assert capped.max() <= 2

    @common_settings
    @given(random_graphs(), st.integers(min_value=0, max_value=6))
    def test_batch_matches_single_source(self, graph, ttl):
        frozen = graph.freeze()
        rows = list(range(min(5, graph.number_of_nodes)))
        batch_hits, batch_messages = batch_flood_curves(frozen, rows, ttl)
        for index, row in enumerate(rows):
            _, hits, messages = flood_curve(frozen, row, ttl)
            assert batch_hits[index, 1:].tolist() == hits.tolist()
            assert batch_messages[index, 1:].tolist() == messages.tolist()
            assert batch_hits[index, 0] == 0 and batch_messages[index, 0] == 0

    def test_batch_empty_sources(self, pa_graph):
        hits, messages = batch_flood_curves(pa_graph.freeze(), [], 5)
        assert hits.shape == (0, 6) and messages.shape == (0, 6)

    def test_batch_rejects_negative_ttl(self, pa_graph):
        with pytest.raises(GraphError):
            batch_flood_curves(pa_graph.freeze(), [0], -1)


class TestBatchRandomWalks:
    def test_steps_follow_edges(self, pa_graph):
        frozen = pa_graph.freeze()
        trajectory = batch_random_walks(
            frozen, [0, 1, 2, 3], 20, np.random.default_rng(7)
        )
        assert trajectory.shape == (21, 4)
        for walker in range(4):
            for hop in range(1, 21):
                here, prev = trajectory[hop, walker], trajectory[hop - 1, walker]
                if here < 0:
                    continue
                assert frozen.has_edge(int(prev), int(here))
                if hop >= 2 and trajectory[hop - 2, walker] >= 0:
                    # Non-backtracking: never return to the hop-2 position.
                    assert here != trajectory[hop - 2, walker]

    def test_deterministic_given_seed(self, pa_graph):
        frozen = pa_graph.freeze()
        first = batch_random_walks(frozen, [0, 5], 15, np.random.default_rng(3))
        second = batch_random_walks(frozen, [0, 5], 15, np.random.default_rng(3))
        assert np.array_equal(first, second)

    def test_dead_end_walkers_die(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        frozen = graph.freeze()
        trajectory = batch_random_walks(frozen, [0], 5, np.random.default_rng(1))
        # 0 -> 1 -> 2 then stuck (only neighbor is the previous hop).
        assert trajectory[1, 0] == 1 and trajectory[2, 0] == 2
        assert trajectory[3, 0] == -1

    def test_backtracking_allows_return(self):
        graph = Graph.from_edges(2, [(0, 1)])
        frozen = graph.freeze()
        trajectory = batch_random_walks(
            frozen, [0], 4, np.random.default_rng(1), allow_backtracking=True
        )
        assert trajectory[4, 0] >= 0  # bounces forever on the single edge

    def test_isolated_source_never_moves(self):
        frozen = Graph(2).freeze()
        trajectory = batch_random_walks(frozen, [0], 3, np.random.default_rng(1))
        assert trajectory[0, 0] == 0
        assert (trajectory[1:, 0] == -1).all()
