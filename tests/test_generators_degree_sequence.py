"""Unit tests for power-law degree-sequence sampling and natural cutoffs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.generators.degree_sequence import (
    aiello_natural_cutoff,
    expected_mean_degree,
    natural_cutoff,
    power_law_degree_sequence,
    power_law_probabilities,
)


class TestProbabilities:
    def test_normalised(self):
        p = power_law_probabilities(2.5, 1, 100)
        assert p.sum() == pytest.approx(1.0)

    def test_monotonically_decreasing(self):
        p = power_law_probabilities(2.2, 2, 50)
        assert np.all(np.diff(p) < 0)

    def test_ratio_matches_exponent(self):
        p = power_law_probabilities(3.0, 1, 10)
        # P(2)/P(1) should equal 2^-3
        assert p[1] / p[0] == pytest.approx(2.0**-3)

    def test_invalid_ranges(self):
        with pytest.raises(ConfigurationError):
            power_law_probabilities(2.5, 0, 10)
        with pytest.raises(ConfigurationError):
            power_law_probabilities(2.5, 5, 4)
        with pytest.raises(ConfigurationError):
            power_law_probabilities(1.0, 1, 10)

    def test_expected_mean_degree_in_range(self):
        mean = expected_mean_degree(2.5, 2, 40)
        assert 2.0 < mean < 40.0


class TestDegreeSequence:
    def test_length_and_bounds(self):
        sequence = power_law_degree_sequence(500, 2.5, min_degree=2, max_degree=25, rng=1)
        assert len(sequence) == 500
        assert min(sequence) >= 2
        assert max(sequence) <= 25

    def test_even_sum(self):
        for seed in range(5):
            sequence = power_law_degree_sequence(
                101, 2.2, min_degree=1, max_degree=30, rng=seed
            )
            assert sum(sequence) % 2 == 0

    def test_default_max_degree_is_n(self):
        sequence = power_law_degree_sequence(50, 3.0, min_degree=1, rng=3)
        assert max(sequence) <= 50

    def test_reproducible(self):
        a = power_law_degree_sequence(100, 2.5, min_degree=1, max_degree=20, rng=9)
        b = power_law_degree_sequence(100, 2.5, min_degree=1, max_degree=20, rng=9)
        assert a == b

    def test_heavy_tail_direction(self):
        sequence = power_law_degree_sequence(5000, 2.2, min_degree=1, max_degree=100, rng=2)
        ones = sequence.count(1)
        big = sum(1 for value in sequence if value >= 50)
        assert ones > big

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            power_law_degree_sequence(0, 2.5)

    def test_single_odd_value_unsatisfiable(self):
        with pytest.raises(ConfigurationError):
            power_law_degree_sequence(3, 2.5, min_degree=3, max_degree=3, rng=1)


class TestNaturalCutoffs:
    def test_dorogovtsev_pa_case(self):
        assert natural_cutoff(10_000, 3.0, min_degree=1) == pytest.approx(100.0)
        assert natural_cutoff(10_000, 3.0, min_degree=3) == pytest.approx(300.0)

    def test_smaller_exponent_larger_cutoff(self):
        assert natural_cutoff(10_000, 2.2) > natural_cutoff(10_000, 3.0)

    def test_aiello_smaller_than_dorogovtsev(self):
        assert aiello_natural_cutoff(10_000, 3.0) < natural_cutoff(10_000, 3.0)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            natural_cutoff(0, 3.0)
        with pytest.raises(ConfigurationError):
            natural_cutoff(10, 1.0)
        with pytest.raises(ConfigurationError):
            aiello_natural_cutoff(10, 0.0)
