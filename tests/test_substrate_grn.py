"""Unit tests for the geometric-random-network substrate."""

from __future__ import annotations

import math

import pytest

from repro.analysis.components import giant_component_fraction
from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.substrate.grn import CRITICAL_MEAN_DEGREE_2D, GeometricRandomNetwork, generate_grn


class TestTorusCellPairDedupe:
    """Torus wrap with few cells: each unordered cell pair swept exactly once.

    With ``cells_per_side == 1`` (radius >= 0.5) every ±1 offset wraps back
    onto the home cell; before the dedupe fix the sweep enumerated the same
    cell pair for all 3^d offsets, burning 9× the distance checks in 2-D
    (and issuing duplicate no-op ``add_edge`` calls).
    """

    def test_large_radius_torus_checks_each_pair_once(self, monkeypatch):
        calls = {"count": 0}
        original = GeometricRandomNetwork._distance_squared

        def counting(a, b, torus):
            calls["count"] += 1
            return original(a, b, torus)

        monkeypatch.setattr(
            GeometricRandomNetwork, "_distance_squared", staticmethod(counting)
        )
        n = 12
        builder = GeometricRandomNetwork(n, radius=0.8, torus=True)
        graph = builder._build_reference(RandomSource(seed=6))
        # On the torus no pair is farther than sqrt(2)/2 < 0.8, so the
        # graph is complete and every pair was checked exactly once.
        assert graph.number_of_edges == n * (n - 1) // 2
        assert calls["count"] == n * (n - 1) // 2

    def test_wrapped_sweep_produces_same_graph_as_wide_grid(self):
        # The dedupe must not change results: a radius just below 0.5
        # (two cells per side, wrap still collapses offsets) agrees with
        # the brute-force distance filter.
        builder = GeometricRandomNetwork(40, radius=0.45, torus=True)
        graph = builder._build_reference(RandomSource(seed=17))
        positions = builder.positions
        expected = set()
        for u in range(40):
            for v in range(u + 1, 40):
                if (
                    GeometricRandomNetwork._distance_squared(
                        positions[u], positions[v], True
                    )
                    <= 0.45 * 0.45
                ):
                    expected.add((u, v))
        actual = {(min(u, v), max(u, v)) for u, v in graph.edges()}
        assert actual == expected


class TestConstruction:
    def test_node_count(self):
        graph = generate_grn(300, target_mean_degree=8.0, seed=1)
        assert graph.number_of_nodes == 300

    def test_reproducible(self):
        a = generate_grn(200, target_mean_degree=6.0, seed=3)
        b = generate_grn(200, target_mean_degree=6.0, seed=3)
        assert a == b

    def test_mean_degree_close_to_target(self):
        graph = generate_grn(1500, target_mean_degree=10.0, seed=5, torus=True)
        assert graph.mean_degree() == pytest.approx(10.0, rel=0.25)

    def test_boundary_effects_reduce_mean_degree(self):
        torus = generate_grn(800, target_mean_degree=8.0, seed=7, torus=True)
        box = generate_grn(800, target_mean_degree=8.0, seed=7, torus=False)
        assert box.mean_degree() <= torus.mean_degree()

    def test_explicit_radius(self):
        builder = GeometricRandomNetwork(100, radius=0.2, seed=2)
        graph = builder.generate_graph()
        assert graph.number_of_nodes == 100
        assert builder.positions  # positions recorded for the last build

    def test_edges_respect_radius(self):
        builder = GeometricRandomNetwork(150, radius=0.15, seed=4)
        graph = builder.generate_graph()
        positions = builder.positions
        for u, v in graph.edges():
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            assert math.hypot(dx, dy) <= 0.15 + 1e-12


class TestGiantComponent:
    def test_supercritical_mean_degree_has_giant_component(self):
        """The paper uses <k>=10 >> k_c=4.52, giving a giant component."""
        graph = generate_grn(1000, target_mean_degree=10.0, seed=9)
        assert giant_component_fraction(graph) > 0.9

    def test_subcritical_mean_degree_fragments(self):
        graph = generate_grn(1000, target_mean_degree=1.0, seed=9)
        assert giant_component_fraction(graph) < 0.5

    def test_critical_constant_exposed(self):
        assert CRITICAL_MEAN_DEGREE_2D == pytest.approx(4.52)


class TestValidation:
    def test_missing_radius_and_degree(self):
        with pytest.raises(ConfigurationError):
            GeometricRandomNetwork(100)

    def test_one_and_three_dimensions_supported(self):
        line = generate_grn(200, target_mean_degree=4.0, dimensions=1, seed=11)
        cube = generate_grn(200, target_mean_degree=6.0, dimensions=3, seed=11)
        assert line.number_of_nodes == 200
        assert cube.number_of_nodes == 200

    def test_parameters_dict(self):
        builder = GeometricRandomNetwork(100, target_mean_degree=5.0, seed=13)
        params = builder.parameters()
        assert params["substrate"] == "grn"
        assert params["effective_radius"] > 0
