"""Behavioural tests for the peer-join strategies of the live overlay."""

from __future__ import annotations

import pytest

from repro.analysis.components import giant_component_fraction
from repro.simulation.network import JoinStrategy, P2PNetwork


def build(strategy: JoinStrategy, peers: int = 120, cutoff: int = 6, seed: int = 5):
    network = P2PNetwork(
        hard_cutoff=cutoff, stubs=2, join_strategy=strategy, horizon=2, rng=seed
    )
    for _ in range(peers):
        network.join()
    return network


class TestAllStrategies:
    @pytest.mark.parametrize("strategy", list(JoinStrategy))
    def test_overlay_is_mostly_connected(self, strategy):
        network = build(strategy)
        assert giant_component_fraction(network.overlay_graph()) > 0.9

    @pytest.mark.parametrize("strategy", list(JoinStrategy))
    def test_mean_degree_close_to_two_m(self, strategy):
        network = build(strategy)
        graph = network.overlay_graph()
        # Each joiner adds about m = 2 links (cutoff saturation can shave a little).
        assert 2.0 < graph.mean_degree() <= 4.2

    @pytest.mark.parametrize("strategy", list(JoinStrategy))
    def test_neighbor_tables_and_graph_stay_consistent(self, strategy):
        network = build(strategy, peers=60)
        graph = network.overlay_graph()
        for peer_id in network.online_peers():
            assert sorted(network.peer(peer_id).neighbors()) == sorted(
                graph.neighbors(peer_id)
            )

    def test_strategy_enum_round_trip(self):
        assert JoinStrategy("random") is JoinStrategy.RANDOM
        assert JoinStrategy("discover") is JoinStrategy.DISCOVER
        with pytest.raises(ValueError):
            JoinStrategy("teleport")


class TestDegreeAwareStrategies:
    def test_preferential_creates_more_skewed_degrees_than_random(self):
        preferential = build(JoinStrategy.PREFERENTIAL, peers=250, cutoff=30, seed=9)
        random_join = build(JoinStrategy.RANDOM, peers=250, cutoff=30, seed=9)
        assert (
            preferential.overlay_graph().max_degree()
            >= random_join.overlay_graph().max_degree()
        )

    def test_discover_join_only_links_within_horizon(self):
        """The discover rule attaches to peers found within `horizon` hops of
        one entry point, so any two of the new peer's neighbors lie within
        `2 * horizon` hops of each other in the pre-join overlay."""
        from repro.substrate.horizon import bfs_distances

        horizon = 2
        network = P2PNetwork(
            hard_cutoff=10, stubs=2, join_strategy=JoinStrategy.DISCOVER,
            horizon=horizon, rng=11,
        )
        for _ in range(80):
            graph_before = network.overlay_graph()
            new_peer = network.join()
            targets = network.peer(new_peer).neighbors()
            if len(targets) >= 2 and graph_before.number_of_nodes > 0:
                anchor, *others = targets
                distances = bfs_distances(graph_before, anchor, max_depth=2 * horizon)
                for other in others:
                    assert other in distances, "discover linked outside its horizon"

    def test_hop_and_attempt_fills_stubs(self):
        network = build(JoinStrategy.HOP_AND_ATTEMPT, peers=100, cutoff=10, seed=13)
        graph = network.overlay_graph()
        late = network.online_peers()[5:]
        assert all(graph.degree(peer) >= 2 for peer in late)
