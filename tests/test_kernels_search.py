"""Kernel-tier suite: dispatch semantics and kernel↔reference equivalence.

Runs on every install: without numba the kernels execute *interpreted*
(same code the JIT compiles), so this suite pins the kernel logic itself —
draw-order parity, batch/sequential stream identity, dispatch gating, the
engine's per-task capture, and the CLI flag — regardless of whether the
container has a compiler.  ``tests/test_backend_equivalence.py`` layers
the full algorithm × generator matrix on top.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.core.errors import ConfigurationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.pa import generate_pa
from repro.kernels import dispatch
from repro.kernels import search as kernels
from repro.kernels.dispatch import (
    active_kernels,
    kernel_query_ready,
    kernel_self_check,
    kernel_tier,
    kernels_runtime,
    normalize_kernels,
    resolve_kernels,
    use_kernels,
)
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.search.probabilistic_flooding import ProbabilisticFloodingSearch
from repro.search.random_walk import RandomWalkSearch


@pytest.fixture(scope="module")
def pa_pair():
    """The mutable reference graph and its order-preserving frozen snapshot.

    (``thaw()`` would *not* do as the reference: it re-adds edges in
    normalized order, which legitimately permutes the neighbor lists the
    seeded draws index into.)
    """
    graph = generate_pa(250, stubs=2, hard_cutoff=12, seed=31)
    return graph, graph.freeze()


@pytest.fixture(scope="module")
def pa_frozen(pa_pair):
    return pa_pair[1]


# --------------------------------------------------------------------------- #
# Dispatch semantics
# --------------------------------------------------------------------------- #
class TestDispatch:
    def test_use_kernels_scopes_selection(self):
        assert active_kernels() == "auto"
        with use_kernels("jit"):
            assert active_kernels() == "jit"
            with use_kernels(None):  # None leaves the ambient choice alone
                assert active_kernels() == "jit"
            with use_kernels("python"):
                assert active_kernels() == "python"
        assert active_kernels() == "auto"

    def test_normalize_rejects_unknown_mode(self):
        assert normalize_kernels(None) == "auto"
        assert normalize_kernels("JIT") == "jit"
        with pytest.raises(ConfigurationError):
            normalize_kernels("gpu")
        with pytest.raises(ConfigurationError):
            with use_kernels("cuda"):
                pass  # pragma: no cover

    def test_self_check_passes_here(self):
        # The parity self-check must pass on every install — interpreted
        # kernels included — or the jit tier would silently lose its
        # correctness guarantee.
        assert kernel_self_check() is True
        assert dispatch.self_check_failure() == ""

    def test_resolution_policy(self):
        # auto -> jit only with numba; explicit jit -> kernel path (the
        # interpreted fallback) because the self-check passes; python wins
        # unconditionally.
        expected_auto = "jit" if dispatch.numba_available() else "python"
        assert kernel_tier() == expected_auto
        assert resolve_kernels("auto") == expected_auto
        assert resolve_kernels("python") == "python"
        assert resolve_kernels("jit") == "jit"
        with use_kernels("jit"):
            assert resolve_kernels() == "jit"
            assert kernels_runtime().startswith("jit")
        with use_kernels("python"):
            assert resolve_kernels() == "python"
            assert kernels_runtime() == "python"

    def test_subclassed_sources_keep_the_reference_path(self):
        class Instrumented(RandomSource):
            pass

        with use_kernels("jit"):
            assert kernel_query_ready(RandomSource(1)) is True
            assert kernel_query_ready(Instrumented(1)) is False
            assert kernel_query_ready(7) is False
        with use_kernels("python"):
            assert kernel_query_ready(RandomSource(1)) is False


# --------------------------------------------------------------------------- #
# Kernel ↔ reference equivalence (direct wrapper calls, no ambient mode)
# --------------------------------------------------------------------------- #
class TestKernelQueries:
    def test_edge_cases_match_reference(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2)])  # node 3 is isolated
        frozen = graph.freeze()
        cases = [
            ("nf", NormalizedFloodingSearch(k_min=2),
             lambda rng, src, ttl: kernels.nf_query(
                 frozen, src, ttl, rng, 2, False, None)),
            ("pf", ProbabilisticFloodingSearch(0.5),
             lambda rng, src, ttl: kernels.pf_query(
                 frozen, src, ttl, rng, 0.5, False, None)),
            ("rw", RandomWalkSearch(walkers=2),
             lambda rng, src, ttl: kernels.rw_query(
                 frozen, src, ttl, rng, 2, False, False, None)),
        ]
        for source, ttl in [(0, 0), (3, 5), (0, 6)]:
            for name, algorithm, run_kernel in cases:
                rng_ref, rng_kernel = RandomSource(3), RandomSource(3)
                result = algorithm.run(graph, source, ttl, rng=rng_ref)
                hits, messages, visited, found_at = run_kernel(
                    rng_kernel, source, ttl
                )
                assert hits == result.hits_per_ttl, (name, source, ttl)
                assert messages == result.messages_per_ttl, (name, source, ttl)
                assert visited == result.visited, (name, source, ttl)
                assert found_at == result.found_at, (name, source, ttl)
                assert rng_ref.random() == rng_kernel.random(), (name, source, ttl)

    def test_count_source_as_hit_and_target(self, pa_pair):
        reference_graph, pa_frozen = pa_pair
        algorithm = NormalizedFloodingSearch(k_min=3, count_source_as_hit=True)
        rng_ref, rng_kernel = RandomSource(11), RandomSource(11)
        result = algorithm.run(reference_graph, 4, 6, rng=rng_ref, target=4)
        hits, messages, visited, found_at = kernels.nf_query(
            pa_frozen, 4, 6, rng_kernel, 3, True, 4
        )
        assert result.found_at == found_at == 0  # target == source
        assert hits == result.hits_per_ttl
        assert messages == result.messages_per_ttl
        assert visited == result.visited

    def test_large_branching_uses_cpython_sample_heuristic(self, pa_pair):
        # k_min > 5 flips random.sample's setsize heuristic; the kernel
        # replica must follow it or the draw streams diverge.
        reference_graph, pa_frozen = pa_pair
        algorithm = NormalizedFloodingSearch(k_min=7)
        rng_ref, rng_kernel = RandomSource(23), RandomSource(23)
        result = algorithm.run(reference_graph, 0, 8, rng=rng_ref)
        hits, _messages, _visited, _found = kernels.nf_query(
            pa_frozen, 0, 8, rng_kernel, 7, False, None
        )
        assert hits == result.hits_per_ttl
        assert rng_ref.random() == rng_kernel.random()


class TestBatchKernels:
    """Throughput mode is draw-identical to sequential kernel queries."""

    SOURCES = [0, 5, 17, 42, 5]  # includes a repeat

    def test_nf_batch_matches_sequential(self, pa_frozen):
        rng_seq, rng_batch = RandomSource(7), RandomSource(7)
        sequential = [
            kernels.nf_query(pa_frozen, source, 6, rng_seq, 2, False, None)
            for source in self.SOURCES
        ]
        hits, messages = kernels.nf_curve_batch(
            pa_frozen, self.SOURCES, 6, rng_batch, 2, False
        )
        for row, (seq_hits, seq_messages, _v, _f) in enumerate(sequential):
            assert hits[row].tolist() == seq_hits
            assert messages[row].tolist() == seq_messages
        assert rng_seq.random() == rng_batch.random()

    def test_pf_batch_matches_sequential(self, pa_frozen):
        rng_seq, rng_batch = RandomSource(9), RandomSource(9)
        sequential = [
            kernels.pf_query(pa_frozen, source, 6, rng_seq, 0.4, False, None)
            for source in self.SOURCES
        ]
        hits, messages = kernels.pf_curve_batch(
            pa_frozen, self.SOURCES, 6, rng_batch, 0.4, False
        )
        for row, (seq_hits, seq_messages, _v, _f) in enumerate(sequential):
            assert hits[row].tolist() == seq_hits
            assert messages[row].tolist() == seq_messages
        assert rng_seq.random() == rng_batch.random()

    def test_empty_query_batch_matches_python_tier(self, pa_frozen):
        # queries=0 must behave identically on every tier (the python
        # tier returns an all-NaN curve); the batch dispatch must not be
        # taken for an empty source list.
        import warnings

        from repro.search.metrics import search_curve

        curves = {}
        for mode in ("python", "jit"):
            with use_kernels(mode), warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                curves[mode] = search_curve(
                    pa_frozen, RandomWalkSearch(), [1, 2, 4], queries=0, rng=3
                )
        assert curves["python"].queries == curves["jit"].queries == 0
        assert str(curves["python"].mean_hits) == str(curves["jit"].mean_hits)

    def test_rw_batch_honours_per_query_ttls(self, pa_frozen):
        ttls = [3, 9, 1, 6, 4]
        rng_seq, rng_batch = RandomSource(13), RandomSource(13)
        sequential = [
            kernels.rw_query(pa_frozen, source, ttl, rng_seq, 2, False, False, None)
            for source, ttl in zip(self.SOURCES, ttls)
        ]
        hits, messages = kernels.rw_curve_batch(
            pa_frozen, self.SOURCES, ttls, rng_batch, 2, False, False
        )
        for row, (seq_hits, seq_messages, _v, _f) in enumerate(sequential):
            assert hits[row, : ttls[row] + 1].tolist() == seq_hits
            assert messages[row, : ttls[row] + 1].tolist() == seq_messages
        assert rng_seq.random() == rng_batch.random()


# --------------------------------------------------------------------------- #
# Engine plumbing: the mode travels with the pickled task
# --------------------------------------------------------------------------- #
class TestEngineCapture:
    def test_run_realizations_captures_ambient_kernels(self, smoke_scale):
        from repro.experiments.runner import run_realizations

        seen = []

        def build(seed):
            return generate_pa(60, stubs=1, seed=seed)

        def measure(graph, seed):
            seen.append(active_kernels())
            return [0.0]

        with use_kernels("jit"):
            run_realizations(smoke_scale, build, measure, backend="csr")
        run_realizations(smoke_scale, build, measure, backend="csr")
        assert seen == ["jit", "auto"]

    def test_realization_spec_pickles_with_kernels(self, smoke_scale):
        from repro.scenarios.measure import RealizationSpec

        spec = RealizationSpec(
            model="pa", scale=smoke_scale, seed=3, stubs=2,
            for_search=True, backend="csr", kernels="jit",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.kernels == "jit"

    def test_search_series_bakes_ambient_kernels_into_tasks(self, smoke_scale):
        # The ambient mode at *task-creation* time decides what each
        # (possibly remote) realization measures with — and jit vs python
        # must not change a single number.
        from repro.scenarios.measure import search_series

        baseline = search_series(
            "pa", "nf smoke", smoke_scale, "nf", stubs=2, hard_cutoff=10
        )
        from repro.core.backend import use_backend

        with use_backend("csr"), use_kernels("jit"):
            jit_series = search_series(
                "pa", "nf smoke", smoke_scale, "nf", stubs=2, hard_cutoff=10
            )
        assert baseline.as_dict() == jit_series.as_dict()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestKernelsCLI:
    def _search(self, capsys, *extra):
        from repro.cli import main

        assert main([
            "search", "nf", "--model", "pa", "--nodes", "200", "--stubs", "2",
            "--ttl", "4", "--queries", "8", "--seed", "5", *extra,
        ]) == 0
        return json.loads(capsys.readouterr().out)

    def test_search_kernels_jit_matches_python(self, capsys):
        reference = self._search(capsys, "--backend", "adj", "--kernels", "python")
        jit = self._search(capsys, "--backend", "csr", "--kernels", "jit")
        assert reference == jit

    def test_figure_accepts_kernels_flag(self, capsys):
        from repro.cli import main

        assert main([
            "figure", "fig9", "--scale", "smoke", "--backend", "csr",
            "--kernels", "jit", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert main([
            "figure", "fig9", "--scale", "smoke", "--kernels", "python", "--json",
        ]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert payload["result"] == reference["result"]
