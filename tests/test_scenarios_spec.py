"""Unit tests for the declarative scenario spec layer (repro.scenarios.spec).

Covers: dict→spec→dict round-trip identity (including hypothesis-fuzzed
specs), canonical spec-hash stability across equivalent spellings, eager
validation with actionable errors, by-scale value resolution, sweep
expansion, and label rendering.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError, ScenarioError
from repro.experiments.runner import ExperimentScale
from repro.scenarios import (
    MeasurementSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    builtin_scenarios,
    canonical_algorithm,
    compile_scenario,
)
from repro.scenarios.spec import resolve_by_scale


def _minimal(payload_overrides=None):
    payload = {
        "id": "t",
        "title": "t",
        "topology": {"model": "pa"},
        "label": "m={m}, {kc}",
        "measurement": {"kind": "degree-distribution"},
    }
    payload.update(payload_overrides or {})
    return payload


class TestRoundTrip:
    def test_shorthand_expands_and_round_trips(self):
        spec = ScenarioSpec.from_dict(_minimal())
        payload = spec.to_dict()
        assert payload["panels"]  # shorthand expanded to a panel list
        assert ScenarioSpec.from_dict(payload) == spec
        # canonical form is a fixed point
        assert ScenarioSpec.from_dict(payload).to_dict() == payload

    def test_json_round_trip(self):
        spec = ScenarioSpec.from_dict(_minimal({
            "sweep": {"axes": {"stubs": [1, 2],
                               "hard_cutoff": {"default": [10, None], "smoke": [10]}}},
        }))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_builtin_scenarios_all_round_trip(self):
        for scenario_id, spec in builtin_scenarios().items():
            rebuilt = ScenarioSpec.from_dict(json.loads(spec.to_json()))
            assert rebuilt == spec, scenario_id
            assert rebuilt.spec_hash() == spec.spec_hash(), scenario_id


# Hypothesis-fuzzed round trips over a constrained but representative
# grammar: every generated payload is a valid spec, and parsing its
# canonical form must reproduce the identical spec and hash.
_axis_values = st.lists(
    st.one_of(st.integers(min_value=1, max_value=100), st.none()),
    min_size=1, max_size=3, unique=True,
)
_by_scale_axis = st.one_of(
    _axis_values,
    st.fixed_dictionaries({"default": _axis_values, "smoke": _axis_values}),
)
_sweeps = st.one_of(
    st.none(),
    st.fixed_dictionaries({"axes": st.fixed_dictionaries(
        {"stubs": st.just([1, 2])},
        optional={"hard_cutoff": _by_scale_axis},
    )}),
)
_measurements = st.one_of(
    st.just({"kind": "degree-distribution"}),
    st.builds(
        lambda alg, ttl: {"kind": "search-curve", "algorithm": alg,
                          **({"ttl": ttl} if ttl else {})},
        st.sampled_from(["fl", "nf", "rw", "pf", "flooding", "random_walk"]),
        st.one_of(st.none(), st.lists(
            st.integers(min_value=1, max_value=8), min_size=1, max_size=3,
            unique=True,
        )),
    ),
)
_scenarios = st.builds(
    lambda model, stubs, sweep, measurement: {
        "id": "fuzz",
        "title": "fuzzed scenario",
        "topology": {"model": model, "stubs": stubs},
        **({"sweep": sweep} if sweep else {}),
        "label": "{model} m={m}, {kc} [{algorithm}]",
        "measurement": measurement,
    },
    st.sampled_from(["pa", "cm", "hapa", "dapa"]),
    st.integers(min_value=1, max_value=3),
    _sweeps,
    _measurements,
)


@settings(max_examples=60, deadline=None)
@given(payload=_scenarios)
def test_fuzzed_round_trip_identity(payload):
    spec = ScenarioSpec.from_dict(payload)
    canonical = spec.to_dict()
    rebuilt = ScenarioSpec.from_dict(canonical)
    assert rebuilt == spec
    assert rebuilt.to_dict() == canonical
    assert rebuilt.spec_hash() == spec.spec_hash()
    # compilation is deterministic and total for valid specs
    plans_a = compile_scenario(spec, ExperimentScale.smoke())
    plans_b = compile_scenario(rebuilt, ExperimentScale.smoke())
    assert [p.label for p in plans_a] == [p.label for p in plans_b]


class TestHashStability:
    def test_equivalent_spellings_share_a_hash(self):
        shorthand = ScenarioSpec.from_dict(_minimal())
        explicit = ScenarioSpec.from_dict({
            "id": "t",
            "title": "t",
            "notes": "",
            "topology": {"model": "pa", "stubs": 1, "hard_cutoff": None,
                         "exponent": 3.0, "tau_sub": 4},
            "panels": [{
                "topology": {},
                "sweep": None,
                "series": [{
                    "label": "m={m}, {kc}",
                    "topology": {},
                    "measurement": {"kind": "degree-distribution",
                                    "algorithm": None, "ttl": None, "params": {}},
                }],
            }],
        })
        assert shorthand.spec_hash() == explicit.spec_hash()
        assert shorthand == explicit

    def test_algorithm_aliases_share_a_hash(self):
        def with_algorithm(name):
            return ScenarioSpec.from_dict(_minimal({
                "measurement": {"kind": "search-curve", "algorithm": name},
            }))
        assert (with_algorithm("flooding").spec_hash()
                == with_algorithm("fl").spec_hash())
        assert (with_algorithm("probabilistic_flooding").spec_hash()
                == with_algorithm("pf").spec_hash())

    def test_model_case_is_canonicalised(self):
        upper = ScenarioSpec.from_dict(_minimal({"topology": {"model": "PA"}}))
        lower = ScenarioSpec.from_dict(_minimal({"topology": {"model": "pa"}}))
        assert upper == lower
        assert upper.spec_hash() == lower.spec_hash()
        plans = compile_scenario(upper, ExperimentScale.smoke())
        assert plans[0].topology["model"] == "pa"
        # ...including in sweep axes and series-level overrides
        swept = ScenarioSpec.from_dict(_minimal({
            "sweep": {"axes": {"model": {"default": ["PA", "CM"],
                                         "smoke": ["HAPA"]}}},
        }))
        axes = dict(swept.panels[0].sweep.axes)
        assert axes["model"] == {"default": ["pa", "cm"], "smoke": ["hapa"]}

    def test_different_parameters_change_the_hash(self):
        base = ScenarioSpec.from_dict(_minimal())
        changed = ScenarioSpec.from_dict(_minimal({
            "topology": {"model": "pa", "stubs": 2},
        }))
        assert base.spec_hash() != changed.spec_hash()

    def test_axis_order_is_semantic_and_hashed(self):
        # Sweep-axis order fixes the series order, so swapping axes is a
        # *different* scenario: it must survive round trips and change hash.
        def with_axes(axes):
            return ScenarioSpec.from_dict(_minimal({"sweep": {"axes": axes}}))
        ab = with_axes({"stubs": [1, 2], "hard_cutoff": [10, None]})
        ba = with_axes({"hard_cutoff": [10, None], "stubs": [1, 2]})
        assert ab.spec_hash() != ba.spec_hash()
        assert ScenarioSpec.from_json(ab.to_json()) == ab
        assert ScenarioSpec.from_json(ba.to_json()) == ba

    def test_hash_is_stable_across_processes(self):
        # SHA-256 over canonical JSON: no interpreter-hash randomisation.
        spec = ScenarioSpec.from_dict(_minimal())
        assert spec.spec_hash() == ScenarioSpec.from_dict(_minimal()).spec_hash()
        assert len(spec.spec_hash()) == 64


class TestValidation:
    @pytest.mark.parametrize("payload, fragment", [
        ({"title": "t"}, "id"),
        (_minimal({"id": "has space"}), "whitespace"),
        (_minimal({"topology": {"model": "chord"}}), "unknown construction model"),
        (_minimal({"topology": {"nodes": 10}}), "unknown field"),
        (_minimal({"measurement": {"kind": "nope"}}), "unknown measurement kind"),
        (_minimal({"measurement": {"kind": "search-curve"}}), "algorithm"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "dht"}}),
         "unknown search algorithm"),
        (_minimal({"sweep": {"axes": {}}}), "at least one axis"),
        (_minimal({"sweep": {"axes": {"queries": [1]}}}), "not a topology field"),
        (_minimal({"sweep": {"axes": {"stubs": [1]}, "expand": "product"}}),
         "grid"),
        (_minimal({"label": "m={unknown_field}"}), "placeholder"),
        (_minimal({"panels": [], "label": None, "measurement": None}), "panels"),
        (_minimal({"sweep": {"axes": {"stubs": {"smoke": [1]}}}}), "default"),
        (_minimal({"sweep": {"axes": {"model": ["pa", "bogus"]}}}),
         "unknown construction model"),
        (_minimal({"sweep": {"axes": {
            "model": {"default": ["pa"], "smoke": ["bogus"]}}}}),
         "unknown construction model"),
        ({"id": "t", "title": "t", "topology": {"model": "pa"},
          "panels": [{"series": [{
              "label": "l", "topology": {"model": "bogus"},
              "measurement": {"kind": "degree-distribution"}}]}]},
         "unknown construction model"),
        (_minimal({"id": "../evil"}), "path separators"),
        (_minimal({"id": "a/b"}), "path separators"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "fl",
                                   "ttl": [2, None]}}), "integers"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "fl",
                                   "ttl": {"default": [2, 4],
                                           "smoke": [2, None]}}}), "integers"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "fl",
                                   "ttl": {"default": [2, 3], "smoke": 5}}}),
         "resolve to a non-empty list"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "fl",
                                   "ttl": {"default": "34"}}}),
         "resolve to a non-empty list"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "fl",
                                   "ttl": []}}), "non-empty"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "fl",
                                   "params": {"forward_probability": 0.5}}}),
         "not accepted by algorithm 'fl'"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "pf",
                                   "params": {"forward_probability": 1.5}}}),
         "invalid for algorithm 'pf'"),
        (_minimal({"measurement": {"kind": "search-curve", "algorithm": "rw",
                                   "params": {"teleport": 0.1}}}),
         "not accepted by algorithm 'rw'"),
        (_minimal({"measurement": {"kind": "degree-distribution",
                                   "ttl": [2, 4]}}), "does not take a 'ttl'"),
        (_minimal({"measurement": {"kind": "degree-distribution",
                                   "algorithm": "fl"}}),
         "does not take an 'algorithm'"),
        (_minimal({"measurement": {"kind": "degree-distribution",
                                   "params": {"cutoffs": [10]}}}),
         "exponent-vs-cutoff"),
        (_minimal({"label": "m={m}, kc={kc_value:d}"}), "label"),
        (_minimal({"measurement": {"kind": "robustness-sweep",
                                   "params": {"cutoffs": [None],
                                              "max_remove": 0.5}}}),
         "does not take params 'max_remove'"),
        (_minimal({"measurement": {"kind": "exponent-vs-cutoff"}}),
         "needs params 'cutoffs'"),
        (_minimal({"measurement": {"kind": "path-length-scaling",
                                   "params": {"sizes": [100]}}}),
         "needs params 'rows'"),
    ])
    def test_actionable_errors(self, payload, fragment):
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict(payload)
        assert fragment in str(excinfo.value)

    def test_scenario_error_is_a_repro_and_value_error(self):
        with pytest.raises(ReproError):
            ScenarioSpec.from_dict({"id": "x"})
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"id": "x"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_json("{not json")

    def test_zip_sweep_length_mismatch(self):
        spec = ScenarioSpec.from_dict(_minimal({
            "sweep": {"axes": {"stubs": [1, 2], "hard_cutoff": [10]},
                      "expand": "zip"},
        }))
        with pytest.raises(ScenarioError):
            compile_scenario(spec, ExperimentScale.smoke())

    def test_runtime_duplicate_labels_from_composite_kinds_are_rejected(self):
        # A composite kind's internally-generated labels bypass the
        # compile-time guard; the result assembler must still catch them.
        from repro.scenarios import run_scenario

        spec = ScenarioSpec.from_dict({
            "id": "t", "title": "t", "topology": {"model": "pa"},
            "panels": [
                {"series": [{"label": "m=1, no kc",
                             "measurement": {"kind": "search-curve",
                                             "algorithm": "fl"}}]},
                {"series": [{"label": "penalty",
                             "measurement": {"kind": "cutoff-penalty",
                                             "params": {"stubs_values": [1]}}}]},
            ],
        })
        with pytest.raises(ScenarioError) as excinfo:
            run_scenario(spec, scale=ExperimentScale.smoke())
        assert "duplicate series label 'm=1, no kc'" in str(excinfo.value)

    def test_duplicate_compiled_labels_are_rejected(self):
        # A label template that omits the swept axis would silently shadow
        # series and share their seed streams.
        spec = ScenarioSpec.from_dict(_minimal({
            "sweep": {"axes": {"hard_cutoff": [10, None]}},
            "label": "m={m}",
        }))
        with pytest.raises(ScenarioError) as excinfo:
            compile_scenario(spec, ExperimentScale.smoke())
        assert "duplicate series label" in str(excinfo.value)
        assert "swept axis" in str(excinfo.value)

    def test_builtin_scenarios_have_unique_labels_at_every_scale(self):
        for scale_name in ("smoke", "small", "paper"):
            scale = ExperimentScale.from_name(scale_name)
            for scenario_id, spec in builtin_scenarios().items():
                compile_scenario(spec, scale)  # raises on duplicates

    def test_missing_model_is_a_compile_error(self):
        spec = ScenarioSpec.from_dict({
            "id": "t", "title": "t",
            "label": "m={m}, {kc}",
            "measurement": {"kind": "degree-distribution"},
        })
        with pytest.raises(ScenarioError) as excinfo:
            compile_scenario(spec, ExperimentScale.smoke())
        assert "model" in str(excinfo.value)


class TestResolutionAndCompilation:
    def test_by_scale_resolution(self):
        value = {"default": [10, 50, None], "smoke": [10, None]}
        assert resolve_by_scale(value, "smoke") == [10, None]
        assert resolve_by_scale(value, "small") == [10, 50, None]
        assert resolve_by_scale(value, "custom") == [10, 50, None]
        assert resolve_by_scale([1, 2], "smoke") == [1, 2]
        # mappings without a 'default' key are plain data
        assert resolve_by_scale({"pa": "yes"}, "smoke") == {"pa": "yes"}

    def test_grid_expansion_last_axis_fastest(self):
        sweep = SweepSpec.from_dict(
            {"axes": {"stubs": [1, 2], "hard_cutoff": [10, None]}}
        )
        assert sweep.points("small") == [
            {"stubs": 1, "hard_cutoff": 10},
            {"stubs": 1, "hard_cutoff": None},
            {"stubs": 2, "hard_cutoff": 10},
            {"stubs": 2, "hard_cutoff": None},
        ]

    def test_zip_expansion(self):
        sweep = SweepSpec.from_dict(
            {"axes": {"stubs": [1, 2], "hard_cutoff": [10, None]}, "expand": "zip"}
        )
        assert sweep.points("small") == [
            {"stubs": 1, "hard_cutoff": 10},
            {"stubs": 2, "hard_cutoff": None},
        ]

    def test_compiled_labels_and_merge_order(self):
        spec = ScenarioSpec.from_dict({
            "id": "t", "title": "t",
            "topology": {"model": "pa", "stubs": 1},
            "panels": [{
                "topology": {"stubs": 2},  # panel overrides scenario default
                "sweep": {"axes": {"hard_cutoff": [10, None]}},
                "series": [
                    {"label": "{model} m={m}, {kc}",
                     "measurement": {"kind": "degree-distribution"}},
                    {"label": "cm-version m={m}, {kc}",
                     "topology": {"model": "cm"},  # series overrides sweep/panel
                     "measurement": {"kind": "degree-distribution"}},
                ],
            }],
        })
        plans = compile_scenario(spec, ExperimentScale.smoke())
        assert [plan.label for plan in plans] == [
            "pa m=2, kc=10", "cm-version m=2, kc=10",
            "pa m=2, no kc", "cm-version m=2, no kc",
        ]
        assert plans[1].topology["model"] == "cm"
        assert plans[0].topology["stubs"] == 2

    def test_canonical_algorithm_resolves_aliases_and_plugins(self):
        assert canonical_algorithm("flooding") == "fl"
        assert canonical_algorithm("NF") == "nf"
        assert canonical_algorithm("pf") == "pf"
        with pytest.raises(ScenarioError):
            canonical_algorithm("dht")

    def test_topology_spec_defaults(self):
        spec = TopologySpec.from_dict({"model": "pa"})
        assert spec.as_params() == {
            "model": "pa", "stubs": 1, "hard_cutoff": None,
            "exponent": 3.0, "tau_sub": 4,
        }

    def test_measurement_spec_canonicalises_on_construction(self):
        assert MeasurementSpec(kind="search-curve", algorithm="flooding").algorithm == "fl"

    def test_model_specific_kinds_reject_other_models(self):
        from repro.scenarios import run_scenario

        for kind, params in (
            ("natural-cutoff-scaling", {"sizes": [50], "stubs_values": [1]}),
            ("robustness-sweep", {"cutoffs": [None]}),
        ):
            spec = ScenarioSpec.from_dict(_minimal({
                "topology": {"model": "cm", "exponent": 2.2},
                "label": "l",
                "measurement": {"kind": kind, "params": params},
            }))
            with pytest.raises(ScenarioError) as excinfo:
                run_scenario(spec, scale=ExperimentScale.smoke())
            assert "pa topologies only" in str(excinfo.value)

    def test_composite_kinds_reject_ignored_topology_fields(self):
        from repro.scenarios import run_scenario

        spec = ScenarioSpec.from_dict(_minimal({
            "topology": {"model": "pa", "stubs": 3, "hard_cutoff": 40},
            "label": "l",
            "measurement": {"kind": "robustness-sweep",
                            "params": {"cutoffs": [None, 10]}},
        }))
        with pytest.raises(ScenarioError) as excinfo:
            run_scenario(spec, scale=ExperimentScale.smoke())
        assert "does not read topology field(s) 'hard_cutoff', 'stubs'" in str(
            excinfo.value)
        assert "measurement.params" in str(excinfo.value)

    def test_cutoff_penalty_threads_topology_parameters(self, monkeypatch):
        import repro.scenarios.measure as measure
        from repro.experiments.results import Series
        from repro.scenarios import run_scenario

        seen = []

        def fake_search_series(model, label, scale, algorithm, stubs=1,
                               hard_cutoff=None, exponent=3.0, tau_sub=4,
                               **kw):
            seen.append((model, exponent, tau_sub))
            ttl = scale.flooding_ttl_grid()
            return Series(label=label, x=ttl, y=[float(v) for v in ttl])

        monkeypatch.setattr(measure, "search_series", fake_search_series)
        spec = ScenarioSpec.from_dict(_minimal({
            "topology": {"model": "cm", "exponent": 2.2, "tau_sub": 7},
            "label": "penalty",
            "measurement": {"kind": "cutoff-penalty",
                            "params": {"stubs_values": [1]}},
        }))
        run_scenario(spec, scale=ExperimentScale.smoke())
        assert seen == [("cm", 2.2, 7), ("cm", 2.2, 7)]

    def test_exponent_vs_cutoff_measures_the_topology_exponent(self, monkeypatch):
        """The prescribed CM exponent must reach the graph builder, not the
        historical hardcoded 3.0."""
        import repro.scenarios.measure as measure
        from repro.scenarios import run_scenario

        seen = []

        def fake_rows(model, label, scale, stubs, hard_cutoff, exponent, tau_sub):
            seen.append((model, exponent))
            return [{"degrees": [1, 2, 2, 3, 5, 8], "generation": {}}]

        monkeypatch.setattr(measure, "_degree_sequence_rows", fake_rows)
        spec = ScenarioSpec.from_dict(_minimal({
            "topology": {"model": "cm", "exponent": 2.2},
            "label": "gamma vs kc",
            "measurement": {"kind": "exponent-vs-cutoff",
                            "params": {"cutoffs": [10]}},
        }))
        run_scenario(spec, scale=ExperimentScale.smoke())
        assert seen == [("cm", 2.2)]
