"""Unit tests for the experiment-result comparison utility."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.compare import compare_results
from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult, Series


def make_result(experiment_id="figX", labels=("a", "b"), scale=1.0):
    result = ExperimentResult(experiment_id, "demo")
    for label in labels:
        result.add(Series(label, x=[1, 2, 3], y=[scale * 1.0, scale * 2.0, scale * 3.0]))
    return result


class TestCompareResults:
    def test_identical_results_have_zero_difference(self):
        report = compare_results(make_result(), make_result())
        assert report.all_within(0.0)
        assert report.only_in_first == []
        assert report.only_in_second == []
        assert report.worst().max_relative_difference == 0.0

    def test_relative_difference_computed(self):
        report = compare_results(make_result(scale=1.1), make_result(scale=1.0))
        assert report.worst().max_relative_difference == pytest.approx(0.1, abs=1e-9)
        assert report.all_within(0.2)
        assert not report.all_within(0.05)

    def test_missing_series_reported(self):
        first = make_result(labels=("a", "b", "extra"))
        second = make_result(labels=("a", "b", "other"))
        report = compare_results(first, second)
        assert report.only_in_first == ["extra"]
        assert report.only_in_second == ["other"]
        assert len(report.shared) == 2

    def test_partial_grid_overlap(self):
        first = ExperimentResult("figX", "t", [Series("s", [1, 2, 3], [1.0, 2.0, 3.0])])
        second = ExperimentResult("figX", "t", [Series("s", [2, 3, 4], [2.0, 3.0, 4.0])])
        comparison = compare_results(first, second).shared[0]
        assert comparison.points_compared == 2
        assert not comparison.identical_grid
        assert comparison.max_relative_difference == 0.0

    def test_disjoint_grids_rejected(self):
        first = ExperimentResult("figX", "t", [Series("s", [1], [1.0])])
        second = ExperimentResult("figX", "t", [Series("s", [9], [1.0])])
        with pytest.raises(ExperimentError):
            compare_results(first, second)

    def test_different_experiments_rejected(self):
        with pytest.raises(ExperimentError):
            compare_results(make_result("fig1"), make_result("fig2"))

    def test_summary_is_json_friendly(self):
        report = compare_results(make_result(scale=2.0), make_result())
        summary = report.summary()
        assert summary["experiment_id"] == "figX"
        assert summary["shared_series"] == 2
        assert summary["worst_label"] in ("a", "b")

    def test_same_seed_experiment_runs_are_identical(self, smoke_scale):
        """End-to-end determinism: two runs of the same experiment at the same
        seed produce byte-identical series."""
        first = run_experiment("natural_cutoff", scale=smoke_scale)
        second = run_experiment("natural_cutoff", scale=smoke_scale)
        report = compare_results(first, second)
        assert report.all_within(0.0)
