"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.components import connected_components
from repro.analysis.degree_distribution import ccdf, degree_distribution, degree_histogram
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.cm import generate_cm
from repro.generators.degree_sequence import power_law_degree_sequence
from repro.generators.pa import generate_pa
from repro.search.flooding import flood
from repro.search.normalized_flooding import normalized_flood
from repro.search.random_walk import random_walk

# Strategy: small random edge lists over a small node universe.
_node_count = st.integers(min_value=2, max_value=25)


@st.composite
def random_graphs(draw):
    n = draw(_node_count)
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=min(60, len(possible_edges)))
    )
    return Graph.from_edges(n, edges)


common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestGraphProperties:
    @common_settings
    @given(random_graphs())
    def test_handshake_lemma(self, graph):
        assert sum(graph.degree_sequence()) == 2 * graph.number_of_edges
        assert graph.total_degree == 2 * graph.number_of_edges

    @common_settings
    @given(random_graphs())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @common_settings
    @given(random_graphs())
    def test_components_partition_nodes(self, graph):
        components = connected_components(graph)
        covered = set()
        for component in components:
            assert not (covered & component)
            covered |= component
        assert covered == set(graph.nodes())

    @common_settings
    @given(random_graphs(), st.integers(min_value=0, max_value=10 ** 6))
    def test_edge_removal_inverse_of_addition(self, graph, seed):
        rng = RandomSource(seed=seed)
        nodes = graph.nodes()
        u = nodes[rng.randint(0, len(nodes) - 1)]
        v = nodes[rng.randint(0, len(nodes) - 1)]
        if u == v:
            return
        existed = graph.has_edge(u, v)
        if not existed:
            graph.add_edge(u, v)
            graph.remove_edge(u, v)
            assert not graph.has_edge(u, v)
        else:
            graph.remove_edge(u, v)
            graph.add_edge(u, v)
            assert graph.has_edge(u, v)


class TestDistributionProperties:
    @common_settings
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_histogram_counts_every_node(self, degrees):
        histogram = degree_histogram(degrees)
        assert sum(histogram.values()) == len(degrees)

    @common_settings
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_distribution_is_a_probability_mass_function(self, degrees):
        distribution = degree_distribution(degrees)
        assert abs(sum(distribution.values()) - 1.0) < 1e-9
        assert all(p > 0 for p in distribution.values())

    @common_settings
    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=200))
    def test_ccdf_starts_at_one_and_decreases(self, degrees):
        points = ccdf(degrees)
        values = [p for _, p in points]
        assert abs(values[0] - 1.0) < 1e-9
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    @common_settings
    @given(
        st.integers(min_value=2, max_value=300),
        st.floats(min_value=1.8, max_value=3.5),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_degree_sequence_even_sum_and_bounds(self, n, gamma, m, seed):
        kc = max(m + 1, 20)
        sequence = power_law_degree_sequence(n, gamma, min_degree=m, max_degree=kc, rng=seed)
        assert len(sequence) == n
        assert sum(sequence) % 2 == 0
        assert all(m <= k <= kc for k in sequence)


class TestGeneratorProperties:
    @common_settings
    @given(
        st.integers(min_value=20, max_value=150),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_pa_cutoff_and_minimum_degree(self, n, m, kc, seed):
        if kc <= m:
            kc = m + 1
        graph = generate_pa(n, stubs=m, hard_cutoff=kc, seed=seed)
        assert graph.number_of_nodes == n
        assert graph.max_degree() <= kc
        if kc >= 2 * m:
            # Degree capacity N*kc >= 2mN: every joining node can fill all its
            # stubs, so m is the minimum degree.  Tighter cutoffs (kc < 2m)
            # are infeasible to saturate and legitimately leave stubs open.
            assert graph.min_degree() >= min(m, n - 1)

    @common_settings
    @given(
        st.integers(min_value=20, max_value=150),
        st.floats(min_value=2.0, max_value=3.2),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_cm_respects_cutoff_and_simplicity(self, n, gamma, seed):
        graph = generate_cm(n, exponent=gamma, min_degree=1, hard_cutoff=15, seed=seed)
        assert graph.max_degree() <= 15
        edges = graph.edges()
        assert len(edges) == len(set(edges))
        assert all(u != v for u, v in edges)


class TestSearchProperties:
    @common_settings
    @given(random_graphs(), st.integers(min_value=0, max_value=8))
    def test_flood_hits_bounded_by_component(self, graph, ttl):
        source = graph.nodes()[0]
        result = flood(graph, source, ttl)
        assert result.hits <= graph.number_of_nodes - 1
        assert all(
            b >= a for a, b in zip(result.hits_per_ttl, result.hits_per_ttl[1:])
        )
        assert len(result.hits_per_ttl) == ttl + 1

    @common_settings
    @given(random_graphs(), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_nf_subset_of_flood(self, graph, ttl, seed):
        source = graph.nodes()[0]
        fl = flood(graph, source, ttl)
        nf = normalized_flood(graph, source, ttl, k_min=2, rng=seed)
        assert nf.visited <= fl.visited
        assert nf.hits <= fl.hits

    @common_settings
    @given(random_graphs(), st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_random_walk_hits_bounded_by_messages(self, graph, ttl, seed):
        source = graph.nodes()[0]
        result = random_walk(graph, source, ttl, rng=seed)
        assert result.hits <= result.messages <= ttl
