"""Integration tests: the paper's qualitative findings, end to end.

These tests build real (small but non-trivial) topologies and check the
*direction* of every headline claim of the paper.  They are the library's
regression net for "does the reproduction still reproduce".
"""

from __future__ import annotations

import pytest

from repro.analysis.components import giant_component_fraction, is_connected
from repro.analysis.cutoff import empirical_cutoff
from repro.analysis.paths import path_length_statistics
from repro.analysis.powerlaw import fit_power_law
from repro.generators.cm import generate_cm
from repro.generators.dapa import generate_dapa
from repro.generators.hapa import generate_hapa
from repro.generators.pa import generate_pa
from repro.search.flooding import FloodingSearch
from repro.search.metrics import normalized_walk_curve, search_curve
from repro.search.normalized_flooding import NormalizedFloodingSearch

# Heaviest file of the unit suite: builds several 2000-node topologies.
pytestmark = pytest.mark.slow

NODES = 2000
QUERIES = 40
SEED = 2007


@pytest.fixture(scope="module")
def pa_no_cutoff():
    return generate_pa(NODES, stubs=2, hard_cutoff=None, seed=SEED)


@pytest.fixture(scope="module")
def pa_small_cutoff():
    return generate_pa(NODES, stubs=2, hard_cutoff=10, seed=SEED)


class TestDegreeDistributionFindings:
    def test_fig1b_spike_at_hard_cutoff(self, pa_small_cutoff):
        degrees = pa_small_cutoff.degree_sequence()
        at_cutoff = sum(1 for k in degrees if k == 10)
        near_cutoff = sum(1 for k in degrees if k == 9)
        assert at_cutoff > 2 * near_cutoff

    def test_fig1c_exponent_decreases_with_cutoff(self):
        gammas = []
        for cutoff in (8, 20, 60):
            graph = generate_pa(NODES, stubs=2, hard_cutoff=cutoff, seed=SEED)
            gammas.append(
                fit_power_law(graph, k_min=2, exclude_cutoff_spike=True).exponent
            )
        assert gammas[0] < gammas[-1]

    def test_fig2_cm_exponent_insensitive_to_cutoff(self):
        tight = generate_cm(NODES, exponent=2.5, min_degree=2, hard_cutoff=10, seed=SEED)
        loose = generate_cm(NODES, exponent=2.5, min_degree=2, hard_cutoff=60, seed=SEED)
        fit_tight = fit_power_law(tight, k_min=2, exclude_cutoff_spike=True).exponent
        fit_loose = fit_power_law(loose, k_min=2, exclude_cutoff_spike=True).exponent
        assert abs(fit_tight - fit_loose) < 0.6

    def test_fig3_hapa_star_versus_cutoff(self):
        star = generate_hapa(1000, stubs=1, hard_cutoff=None, seed=SEED)
        capped = generate_hapa(1000, stubs=1, hard_cutoff=10, seed=SEED)
        assert empirical_cutoff(star) > 0.5 * 1000
        assert empirical_cutoff(capped) <= 10

    def test_fig4_dapa_locality_transition(self):
        shortsighted = generate_dapa(600, stubs=1, local_ttl=2, seed=SEED)
        farsighted = generate_dapa(600, stubs=1, local_ttl=15, seed=SEED)
        assert empirical_cutoff(farsighted) > empirical_cutoff(shortsighted)

    def test_natural_cutoff_scales_like_sqrt_n(self):
        small = generate_pa(500, stubs=1, seed=SEED)
        large = generate_pa(4500, stubs=1, seed=SEED)
        ratio = empirical_cutoff(large) / empirical_cutoff(small)
        assert 1.3 < ratio < 9.0  # sqrt(9) = 3 expected, wide tolerance for noise


class TestDiameterFindings:
    def test_table1_tree_has_longer_paths_than_m2(self):
        tree = generate_pa(NODES, stubs=1, seed=SEED)
        dense = generate_pa(NODES, stubs=2, seed=SEED)
        tree_stats = path_length_statistics(tree, sample_size=60, rng=1)
        dense_stats = path_length_statistics(dense, sample_size=60, rng=1)
        assert tree_stats.average > dense_stats.average

    def test_table1_ultra_small_shorter_than_gamma3(self):
        ultra = generate_cm(NODES, exponent=2.2, min_degree=2, seed=SEED)
        regular = generate_cm(NODES, exponent=3.5, min_degree=2, seed=SEED)
        ultra_stats = path_length_statistics(ultra, sample_size=60, rng=1)
        regular_stats = path_length_statistics(regular, sample_size=60, rng=1)
        assert ultra_stats.average < regular_stats.average


class TestSearchFindings:
    def test_fig6_flooding_prefers_no_cutoff_at_low_m(self):
        bounded = generate_pa(NODES, stubs=1, hard_cutoff=10, seed=SEED)
        unbounded = generate_pa(NODES, stubs=1, hard_cutoff=None, seed=SEED)
        ttl = [4]
        hits_bounded = search_curve(
            bounded, FloodingSearch(), ttl, queries=QUERIES, rng=SEED
        ).final_hits()
        hits_unbounded = search_curve(
            unbounded, FloodingSearch(), ttl, queries=QUERIES, rng=SEED
        ).final_hits()
        assert hits_unbounded > hits_bounded

    def test_fig6_m3_makes_cutoff_penalty_negligible(self):
        """At m=3 both curves saturate by a moderate TTL (the paper's claim is
        about the saturated regime, where the cutoff costs almost nothing)."""
        bounded = generate_pa(NODES, stubs=3, hard_cutoff=10, seed=SEED)
        unbounded = generate_pa(NODES, stubs=3, hard_cutoff=None, seed=SEED)
        ttl = [6]
        hits_bounded = search_curve(
            bounded, FloodingSearch(), ttl, queries=QUERIES, rng=SEED
        ).final_hits()
        hits_unbounded = search_curve(
            unbounded, FloodingSearch(), ttl, queries=QUERIES, rng=SEED
        ).final_hits()
        assert hits_bounded > 0.75 * hits_unbounded

    def test_fig7_cm_m1_saturates_below_system_size(self):
        graph = generate_cm(NODES, exponent=2.5, min_degree=1, hard_cutoff=40, seed=SEED)
        assert not is_connected(graph)
        curve = search_curve(
            graph, FloodingSearch(), [20], queries=QUERIES, rng=SEED
        )
        assert curve.final_hits() < 0.95 * NODES

    def test_fig9_headline_smaller_cutoff_helps_nf_on_pa(
        self, pa_no_cutoff, pa_small_cutoff
    ):
        ttl = [8]
        hits_cutoff = search_curve(
            pa_small_cutoff, NormalizedFloodingSearch(k_min=2), ttl,
            queries=QUERIES, rng=SEED,
        ).final_hits()
        hits_free = search_curve(
            pa_no_cutoff, NormalizedFloodingSearch(k_min=2), ttl,
            queries=QUERIES, rng=SEED,
        ).final_hits()
        assert hits_cutoff >= 0.95 * hits_free

    def test_fig11_headline_smaller_cutoff_helps_rw_on_pa(
        self, pa_no_cutoff, pa_small_cutoff
    ):
        ttl = [8]
        hits_cutoff = normalized_walk_curve(
            pa_small_cutoff, ttl, k_min=2, queries=QUERIES, rng=SEED
        ).final_hits()
        hits_free = normalized_walk_curve(
            pa_no_cutoff, ttl, k_min=2, queries=QUERIES, rng=SEED
        ).final_hits()
        assert hits_cutoff >= 0.95 * hits_free

    def test_fig9_connectedness_dominates_hits(self):
        """m=3 topologies give order-of-magnitude more NF hits than m=1."""
        sparse = generate_pa(NODES, stubs=1, hard_cutoff=40, seed=SEED)
        dense = generate_pa(NODES, stubs=3, hard_cutoff=40, seed=SEED)
        ttl = [8]
        hits_sparse = search_curve(
            sparse, NormalizedFloodingSearch(k_min=1), ttl, queries=QUERIES, rng=SEED
        ).final_hits()
        hits_dense = search_curve(
            dense, NormalizedFloodingSearch(k_min=3), ttl, queries=QUERIES, rng=SEED
        ).final_hits()
        assert hits_dense > 10 * hits_sparse

    def test_messaging_cutoff_cost_is_negligible(self, pa_no_cutoff, pa_small_cutoff):
        ttl = [6]
        messages_cutoff = search_curve(
            pa_small_cutoff, NormalizedFloodingSearch(k_min=2), ttl,
            queries=QUERIES, rng=SEED,
        ).mean_messages[0]
        messages_free = search_curve(
            pa_no_cutoff, NormalizedFloodingSearch(k_min=2), ttl,
            queries=QUERIES, rng=SEED,
        ).mean_messages[0]
        assert messages_cutoff < 1.5 * messages_free

    def test_dapa_m1_cutoff_improves_connectivity(self):
        bounded = generate_dapa(800, stubs=1, hard_cutoff=10, local_ttl=10, seed=SEED)
        unbounded = generate_dapa(800, stubs=1, hard_cutoff=None, local_ttl=10, seed=SEED)
        assert giant_component_fraction(bounded) >= giant_component_fraction(unbounded) - 0.05
