"""Unit tests for the experiment scale presets, realization runner, and sweeps."""

from __future__ import annotations

import zlib

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.runner import (
    ExperimentScale,
    average_curves,
    realization_seeds,
    run_realizations,
)
from repro.experiments.sweeps import format_cutoff, format_label, parameter_grid


class TestExperimentScale:
    def test_presets(self):
        smoke = ExperimentScale.smoke()
        small = ExperimentScale.small()
        paper = ExperimentScale.paper()
        assert smoke.nodes < small.nodes < paper.nodes
        assert paper.search_nodes == 10_000
        assert paper.substrate_nodes == 20_000

    def test_from_name(self):
        assert ExperimentScale.from_name("smoke").name == "smoke"
        with pytest.raises(ExperimentError):
            ExperimentScale.from_name("huge")

    def test_with_seed(self):
        scale = ExperimentScale.smoke().with_seed(99)
        assert scale.seed == 99
        assert scale.name == "smoke"

    def test_ttl_grids(self):
        scale = ExperimentScale(max_ttl=10, flooding_max_ttl=5)
        assert scale.ttl_grid() == [2, 4, 6, 8, 10]
        assert scale.flooding_ttl_grid() == [1, 2, 3, 4, 5]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(nodes=5)
        with pytest.raises(ExperimentError):
            ExperimentScale(substrate_nodes=100, search_nodes=200)
        with pytest.raises(ExperimentError):
            ExperimentScale(realizations=0)

    def test_as_dict(self):
        payload = ExperimentScale.smoke().as_dict()
        assert payload["name"] == "smoke"
        assert "seed" in payload


class TestRealizationSeeds:
    def test_count_matches_realizations(self):
        scale = ExperimentScale(realizations=4)
        assert len(realization_seeds(scale)) == 4

    def test_labels_decorrelate_seeds(self):
        scale = ExperimentScale(realizations=2)
        assert realization_seeds(scale, "a") != realization_seeds(scale, "b")

    def test_stable_across_calls(self):
        scale = ExperimentScale(realizations=3)
        assert realization_seeds(scale, "x") == realization_seeds(scale, "x")

    def test_unlabelled_seeds_keep_simple_ladder(self):
        scale = ExperimentScale(realizations=3).with_seed(50)
        assert realization_seeds(scale) == [50, 51, 52]

    def test_labelled_seeds_pinned(self):
        """Labelled seed derivation is part of the on-disk cache contract:
        these exact values must stay stable across interpreter runs, worker
        processes, and releases (changing them invalidates every store)."""
        scale = ExperimentScale(realizations=3).with_seed(123)
        assert realization_seeds(scale, "m=2, kc=10") == [
            6523444782494324316,
            5191790838856947213,
            546939511412477096,
        ]

    def test_nearby_crc32_offsets_do_not_collide(self):
        """Regression: the old scheme derived labelled seeds as
        ``seed + crc32(label) % 10_000 + index``, so two labels whose offsets
        differed by less than ``realizations`` shared seeds and silently
        correlated curves the paper averages as independent.  ``curve-22``
        and ``curve-32`` are such a pair (offsets 8812 and 8810)."""
        offsets = [zlib.crc32(label.encode()) % 10_000 for label in ("curve-22", "curve-32")]
        assert abs(offsets[0] - offsets[1]) < 3  # the hazard the old scheme had
        scale = ExperimentScale(realizations=3)
        seeds_a = set(realization_seeds(scale, "curve-22"))
        seeds_b = set(realization_seeds(scale, "curve-32"))
        assert seeds_a.isdisjoint(seeds_b)

    def test_every_labelled_realization_gets_a_distinct_seed(self):
        scale = ExperimentScale(realizations=10)
        labels = [f"m={m}, kc={kc}" for m in (1, 2, 3) for kc in (10, 20, 50, None)]
        all_seeds = [seed for label in labels for seed in realization_seeds(scale, label)]
        assert len(all_seeds) == len(set(all_seeds))


class TestRunRealizations:
    def test_averages_measurements(self):
        scale = ExperimentScale(realizations=3)
        seeds_seen = []
        result = run_realizations(
            scale,
            build=lambda seed: seeds_seen.append(seed) or seed,
            measure=lambda subject, seed: [float(len(seeds_seen)), 1.0],
        )
        assert len(result) == 2
        assert result[1] == 1.0
        assert len(seeds_seen) == 3

    def test_mismatched_lengths_rejected(self):
        scale = ExperimentScale(realizations=2)
        lengths = iter([2, 3])
        with pytest.raises(ExperimentError):
            run_realizations(
                scale,
                build=lambda seed: seed,
                measure=lambda subject, seed: [0.0] * next(lengths),
            )

    def test_average_curves(self):
        assert average_curves([[1.0, 3.0], [3.0, 5.0]]) == [2.0, 4.0]
        with pytest.raises(ExperimentError):
            average_curves([])
        with pytest.raises(ExperimentError):
            average_curves([[1.0], [1.0, 2.0]])


class TestSweeps:
    def test_parameter_grid_order(self):
        grid = parameter_grid({"m": [1, 2], "kc": [10, None]})
        assert grid == [
            {"m": 1, "kc": 10},
            {"m": 1, "kc": None},
            {"m": 2, "kc": 10},
            {"m": 2, "kc": None},
        ]

    def test_empty_space_rejected(self):
        with pytest.raises(ExperimentError):
            parameter_grid({})
        with pytest.raises(ExperimentError):
            parameter_grid({"m": []})

    def test_format_cutoff(self):
        assert format_cutoff(None) == "no kc"
        assert format_cutoff(40) == "kc=40"

    def test_format_label(self):
        assert format_label(m=2, kc=None) == "m=2, no kc"
        assert format_label(m=1, kc=40, tau_sub=6) == "m=1, kc=40, tau_sub=6"
        assert format_label(m=1, gamma=None) == "m=1"
