"""Unit tests for the discover-and-attempt (DAPA) generator."""

from __future__ import annotations

import pytest

from repro.core.config import GRNConfig, MeshConfig
from repro.core.errors import ConfigurationError
from repro.generators.dapa import DAPAGenerator, generate_dapa
from repro.substrate.mesh import generate_mesh


class TestBasicProperties:
    def test_overlay_size_reached_on_dense_substrate(self):
        generator = DAPAGenerator(
            overlay_size=150, stubs=2, hard_cutoff=10, local_ttl=4, seed=1
        )
        result = generator.generate()
        assert result.metadata["reached_target"] is True
        assert result.graph.number_of_nodes == 150

    def test_cutoff_respected(self):
        graph = generate_dapa(200, stubs=2, hard_cutoff=6, local_ttl=4, seed=2)
        assert graph.max_degree() <= 6

    def test_reproducible(self):
        a = generate_dapa(100, stubs=1, hard_cutoff=10, local_ttl=3, seed=3)
        b = generate_dapa(100, stubs=1, hard_cutoff=10, local_ttl=3, seed=3)
        assert a == b

    def test_overlay_nodes_are_substrate_nodes(self):
        substrate = generate_mesh(20, 20)
        graph = generate_dapa(
            100, stubs=1, local_ttl=3, substrate_graph=substrate, seed=4
        )
        assert set(graph.nodes()).issubset(set(substrate.nodes()))

    def test_metadata_reports_substrate(self):
        generator = DAPAGenerator(overlay_size=80, stubs=1, local_ttl=2, seed=5)
        result = generator.generate()
        assert result.metadata["substrate_nodes"] == 160
        assert result.metadata["discovery_messages"] >= result.graph.number_of_nodes - 2


class TestLocalityEffect:
    def test_larger_horizon_heavier_tail(self):
        """Large tau_sub recovers a power-law-like heavy tail (paper Fig. 4)."""
        shortsighted = generate_dapa(400, stubs=1, local_ttl=2, seed=6)
        farsighted = generate_dapa(400, stubs=1, local_ttl=20, seed=6)
        assert farsighted.max_degree() >= shortsighted.max_degree()

    def test_short_horizon_can_leave_stubs_unfilled(self):
        """With m>1 and a tiny horizon some peers cannot fill all stubs."""
        graph = generate_dapa(300, stubs=3, local_ttl=1, seed=7)
        assert graph.min_degree() < 3

    def test_mesh_substrate_supported(self):
        config = MeshConfig(rows=25, columns=25)
        graph = generate_dapa(
            150, stubs=2, hard_cutoff=8, local_ttl=4, substrate_config=config, seed=8
        )
        assert graph.number_of_nodes <= 150
        assert graph.max_degree() <= 8


class TestConfiguration:
    def test_fully_local_flag(self):
        assert DAPAGenerator.uses_global_information == "no"

    def test_substrate_graph_and_config_mutually_exclusive(self):
        substrate = generate_mesh(10, 10)
        with pytest.raises(ConfigurationError):
            DAPAGenerator(
                overlay_size=50,
                substrate_graph=substrate,
                substrate_config=GRNConfig(number_of_nodes=100, radius=0.2),
            )

    def test_substrate_too_small_rejected(self):
        substrate = generate_mesh(5, 5)
        with pytest.raises(ConfigurationError):
            DAPAGenerator(overlay_size=100, substrate_graph=substrate)

    def test_parameters_dict(self):
        generator = DAPAGenerator(
            overlay_size=60, stubs=2, hard_cutoff=10, local_ttl=5, seed=9
        )
        params = generator.parameters()
        assert params["model"] == "dapa"
        assert params["local_ttl"] == 5
        assert params["substrate"] == "default_grn"

    def test_disconnected_substrate_stops_early(self):
        """If no substrate node can see a peer, generation stops gracefully."""
        # Two disjoint mesh islands; seeds will fall in one or the other.
        from repro.core.graph import Graph

        island_a = generate_mesh(6, 6)
        substrate = Graph(72)
        for u, v in island_a.edges():
            substrate.add_edge(u, v)
        for u, v in generate_mesh(6, 6).edges():
            substrate.add_edge(u + 36, v + 36)
        generator = DAPAGenerator(
            overlay_size=70, stubs=1, local_ttl=2, substrate_graph=substrate, seed=10
        )
        result = generator.generate()
        assert result.graph.number_of_nodes <= 70
        # Either the target was reached (both islands seeded) or it stopped early.
        assert isinstance(result.metadata["reached_target"], bool)
