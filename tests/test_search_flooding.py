"""Unit tests for the flooding search algorithm."""

from __future__ import annotations

import pytest

from repro.core.errors import SearchError
from repro.core.graph import Graph
from repro.search.flooding import FloodingSearch, flood


class TestCoverage:
    def test_path_graph_cumulative_hits(self, path_graph):
        result = flood(path_graph, 0, ttl=4)
        assert result.hits_per_ttl == [0, 1, 2, 3, 4]

    def test_star_graph_one_hop_reaches_everything(self, star_graph):
        result = flood(star_graph, 0, ttl=1)
        assert result.hits == 5

    def test_star_graph_leaf_two_hops(self, star_graph):
        result = flood(star_graph, 1, ttl=2)
        assert result.hits_per_ttl == [0, 1, 5]

    def test_flood_covers_component_only(self, two_component_graph):
        result = flood(two_component_graph, 0, ttl=10)
        assert result.hits == 2
        assert result.visited == {0, 1, 2}

    def test_source_counted_when_requested(self, path_graph):
        result = FloodingSearch(count_source_as_hit=True).run(path_graph, 0, 2)
        assert result.hits_per_ttl[0] == 1

    def test_hits_monotone_in_ttl(self, pa_graph_cutoff):
        result = flood(pa_graph_cutoff, 0, ttl=8)
        assert all(
            later >= earlier
            for earlier, later in zip(result.hits_per_ttl, result.hits_per_ttl[1:])
        )

    def test_full_coverage_on_connected_graph(self, pa_graph_small):
        result = flood(pa_graph_small, 5, ttl=20)
        assert result.hits == pa_graph_small.number_of_nodes - 1


class TestMessages:
    def test_message_count_on_star_from_center(self, star_graph):
        result = flood(star_graph, 0, ttl=2)
        # hop 1: 5 messages out; hop 2: each leaf has no neighbor besides the
        # center (excluded as previous hop), so no further messages.
        assert result.messages_per_ttl == [0, 5, 5]

    def test_messages_count_duplicates(self, complete_graph):
        result = flood(complete_graph, 0, ttl=2)
        # hop 1: 5 messages; hop 2: each of the 5 nodes forwards to 4 others
        # (everyone already visited, but the messages are still sent).
        assert result.messages_per_ttl[1] == 5
        assert result.messages_per_ttl[2] == 5 + 5 * 4

    def test_messages_at_accessor(self, path_graph):
        result = flood(path_graph, 0, ttl=4)
        assert result.messages_at(2) == 2
        assert result.messages_at(100) == result.messages


class TestTargetsAndEdgeCases:
    def test_target_found_at_distance(self, path_graph):
        result = flood(path_graph, 0, ttl=4, target=3)
        assert result.found_at == 3
        assert result.success

    def test_target_unreachable(self, two_component_graph):
        result = flood(two_component_graph, 0, ttl=5, target=4)
        assert result.found_at is None
        assert not result.success

    def test_ttl_zero(self, path_graph):
        result = flood(path_graph, 0, ttl=0)
        assert result.hits == 0
        assert result.messages == 0

    def test_negative_ttl_rejected(self, path_graph):
        with pytest.raises(SearchError):
            flood(path_graph, 0, ttl=-1)

    def test_missing_source_rejected(self, path_graph):
        with pytest.raises(SearchError):
            flood(path_graph, 99, ttl=2)

    def test_isolated_source(self):
        graph = Graph(3)
        result = flood(graph, 0, ttl=4)
        assert result.hits == 0
        assert result.messages == 0

    def test_hits_at_out_of_range_clamps(self, path_graph):
        result = flood(path_graph, 0, ttl=2)
        assert result.hits_at(50) == result.hits
        with pytest.raises(SearchError):
            result.hits_at(-1)

    def test_run_many(self, star_graph):
        results = FloodingSearch().run_many(star_graph, [0, 1, 2], ttl=2)
        assert len(results) == 3
        assert results[0].source == 0
