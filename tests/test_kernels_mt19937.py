"""MT19937 parity suite: the kernel RNG against CPython's ``random.Random``.

The kernel tier's whole correctness story rests on one claim: a kernel
state vector seeded (or spliced) from a :class:`random.Random` produces
**the same draw sequence** — ``random()``, ``getrandbits``, ``randrange``
— and ends at the same stream position, for arbitrary seeds and draw
counts.  These tests pin that claim with hypothesis-driven op sequences,
plus the seeding/corner cases CPython is quirky about (negative seeds,
seed 0, huge seeds, the draw-consuming ``_randbelow(1)``).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import RandomSource
from repro.kernels import mt19937 as mt

SEEDS = st.integers(min_value=0, max_value=2**130)

#: One draw operation: kind plus its argument (ignored for "random").
OPS = st.one_of(
    st.tuples(st.just("random"), st.just(0)),
    st.tuples(st.just("getrandbits"), st.integers(min_value=1, max_value=96)),
    st.tuples(st.just("randrange"), st.integers(min_value=1, max_value=2**24)),
)


def _apply(op, state, reference):
    kind, argument = op
    if kind == "random":
        return mt.mt_random(state), reference.random()
    if kind == "getrandbits":
        return mt.getrandbits(state, argument), reference.getrandbits(argument)
    return mt.randrange(state, 0, argument), reference.randrange(argument)


class TestStreamParity:
    @settings(max_examples=60, deadline=None)
    @given(seed=SEEDS, ops=st.lists(OPS, max_size=40))
    def test_arbitrary_seed_and_draw_sequence(self, seed, ops):
        state = mt.mt_state_from_seed(seed)
        reference = random.Random(seed)
        # Seeding produces the identical 625-word internal state...
        assert mt.state_to_internal(state) == reference.getstate()[1]
        # ...every interleaved draw matches value for value...
        for op in ops:
            ours, expected = _apply(op, state, reference)
            assert ours == expected, (seed, op)
        # ...and the stream ends at the identical position.
        assert mt.state_to_internal(state) == reference.getstate()[1]

    def test_negative_seed_matches_cpython_abs(self):
        # CPython seeds from the absolute value of an int seed.
        assert np.array_equal(
            mt.mt_state_from_seed(-987654321), mt.mt_state_from_seed(987654321)
        )
        state = mt.mt_state_from_seed(-987654321)
        assert mt.mt_random(state) == random.Random(-987654321).random()

    def test_randbelow_one_consumes_draws(self):
        # _randbelow(1) rejection-samples 1-bit draws until it sees a zero;
        # the kernels must reproduce that consumption, not skip it.
        state = mt.mt_state_from_seed(5)
        reference = random.Random(5)
        for _ in range(50):
            assert int(mt.mt_randbelow(state, 1)) == reference.randrange(1) == 0
        assert mt.state_to_internal(state) == reference.getstate()[1]

    def test_getrandbits_rejects_nonpositive(self):
        state = mt.mt_state_from_seed(1)
        with pytest.raises(ValueError):
            mt.getrandbits(state, 0)

    def test_randrange_rejects_empty(self):
        state = mt.mt_state_from_seed(1)
        with pytest.raises(ValueError):
            mt.randrange(state, 3, 3)

    def test_state_length_validated(self):
        with pytest.raises(ValueError):
            mt.state_from_internal((1, 2, 3))
        with pytest.raises(ValueError):
            mt.state_to_internal(np.zeros(7, dtype=np.int64))


class TestRandomSourceSplice:
    """export_mt_state / import_mt_state round the stream through a kernel."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=SEEDS,
        warmup=st.integers(min_value=0, max_value=30),
        kernel_draws=st.integers(min_value=0, max_value=30),
    )
    def test_splice_preserves_the_stream(self, seed, warmup, kernel_draws):
        source = RandomSource(seed=seed)
        reference = random.Random(seed)
        for _ in range(warmup):
            assert source.random() == reference.random()
        # Hand the stream to "a kernel", draw from it there, hand it back.
        state = source.export_mt_state()
        for _ in range(kernel_draws):
            assert mt.mt_random(state) == reference.random()
        source.import_mt_state(state)
        # The source continues exactly where the pure-Python consumer is.
        for _ in range(5):
            assert source.random() == reference.random()

    def test_getstate_setstate_round_trip(self):
        source = RandomSource(seed=77)
        checkpoint = source.getstate()
        first = [source.random() for _ in range(10)]
        source.setstate(checkpoint)
        assert [source.random() for _ in range(10)] == first

    def test_import_preserves_gauss_cache(self):
        # The splice replaces only the MT words; random.Random's cached
        # Gaussian pair (third getstate element) must survive untouched.
        source = RandomSource(seed=9)
        source._random.gauss(0.0, 1.0)  # prime the pair cache
        gauss_before = source.getstate()[2]
        assert gauss_before is not None
        state = source.export_mt_state()
        mt.mt_random(state)
        source.import_mt_state(state)
        assert source.getstate()[2] == gauss_before
