"""Unit tests for the normalized-flooding search algorithm."""

from __future__ import annotations

import pytest

from repro.core.graph import Graph
from repro.search.flooding import FloodingSearch
from repro.search.normalized_flooding import NormalizedFloodingSearch, normalized_flood


class TestBranching:
    def test_source_sends_at_most_kmin_messages(self, complete_graph):
        result = normalized_flood(complete_graph, 0, ttl=1, k_min=2, rng=1)
        assert result.messages == 2
        assert result.hits == 2

    def test_kmin_one_behaves_like_single_path(self, complete_graph):
        result = normalized_flood(complete_graph, 0, ttl=3, k_min=1, rng=2)
        # One message per hop at most.
        assert result.messages <= 3

    def test_default_kmin_is_graph_min_degree(self, star_graph):
        search = NormalizedFloodingSearch()  # min degree of a star is 1
        result = search.run(star_graph, 0, ttl=1, rng=1)
        assert result.messages == 1

    def test_low_degree_node_forwards_to_all_but_previous(self):
        # 0 - 1 - {2, 3}: node 1 has degree 3 > kmin=2 so it forwards to 2
        # random neighbors except 0 -> exactly {2, 3}.
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        result = normalized_flood(graph, 0, ttl=2, k_min=2, rng=5)
        assert result.hits == 3

    def test_invalid_kmin(self):
        with pytest.raises(ValueError):
            NormalizedFloodingSearch(k_min=0)


class TestComparisonWithFlooding:
    def test_nf_never_exceeds_fl_hits(self, pa_graph_cutoff):
        """NF explores a subset of what FL explores at the same TTL."""
        fl = FloodingSearch().run(pa_graph_cutoff, 3, ttl=5)
        nf = NormalizedFloodingSearch(k_min=2).run(pa_graph_cutoff, 3, ttl=5, rng=7)
        assert nf.hits <= fl.hits

    def test_nf_uses_fewer_messages_than_fl_on_hubby_graph(self, pa_graph_small):
        fl = FloodingSearch().run(pa_graph_small, 0, ttl=4)
        nf = NormalizedFloodingSearch(k_min=2).run(pa_graph_small, 0, ttl=4, rng=3)
        assert nf.messages < fl.messages

    def test_nf_equals_fl_on_regular_graph_of_degree_kmin(self):
        """On a k_min-regular graph NF forwards to everyone, i.e. it IS flooding."""
        cycle = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        fl = FloodingSearch().run(cycle, 0, ttl=3)
        nf = NormalizedFloodingSearch(k_min=2).run(cycle, 0, ttl=3, rng=1)
        assert nf.hits == fl.hits


class TestBehaviour:
    def test_hits_monotone_in_ttl(self, pa_graph_cutoff):
        result = normalized_flood(pa_graph_cutoff, 1, ttl=8, k_min=2, rng=11)
        assert all(
            later >= earlier
            for earlier, later in zip(result.hits_per_ttl, result.hits_per_ttl[1:])
        )

    def test_reproducible_with_seed(self, pa_graph_cutoff):
        a = normalized_flood(pa_graph_cutoff, 1, ttl=6, k_min=2, rng=42)
        b = normalized_flood(pa_graph_cutoff, 1, ttl=6, k_min=2, rng=42)
        assert a.hits_per_ttl == b.hits_per_ttl
        assert a.messages_per_ttl == b.messages_per_ttl

    def test_ttl_zero(self, path_graph):
        result = normalized_flood(path_graph, 0, ttl=0, k_min=1, rng=1)
        assert result.hits == 0
        assert result.messages == 0
        assert len(result.hits_per_ttl) == 1

    def test_target_detection(self, path_graph):
        result = normalized_flood(path_graph, 0, ttl=4, k_min=1, rng=1, target=2)
        if result.found_at is not None:
            assert result.found_at <= 4

    def test_dead_end_terminates_early(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        result = normalized_flood(graph, 0, ttl=10, k_min=1, rng=1)
        assert result.hits == 2
        assert len(result.hits_per_ttl) == 11

    def test_source_counted_when_requested(self, star_graph):
        result = NormalizedFloodingSearch(k_min=1, count_source_as_hit=True).run(
            star_graph, 0, ttl=1, rng=1
        )
        assert result.hits_per_ttl[0] == 1
