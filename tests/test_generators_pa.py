"""Unit tests for the preferential-attachment generator."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.generators.pa import PreferentialAttachmentGenerator, generate_pa


class TestBasicProperties:
    def test_node_and_edge_counts_m1(self):
        graph = generate_pa(200, stubs=1, seed=1)
        assert graph.number_of_nodes == 200
        # Seed clique of 2 nodes has 1 edge; each of the 198 added nodes adds 1.
        assert graph.number_of_edges == 199

    def test_node_and_edge_counts_m3(self):
        graph = generate_pa(200, stubs=3, seed=1)
        assert graph.number_of_nodes == 200
        # Seed clique of 4 nodes has 6 edges; each of the 196 added nodes adds 3.
        assert graph.number_of_edges == 6 + 196 * 3

    def test_minimum_degree_is_m(self):
        for stubs in (1, 2, 3):
            graph = generate_pa(150, stubs=stubs, seed=2)
            assert graph.min_degree() >= stubs

    def test_m1_topology_is_a_tree(self):
        graph = generate_pa(100, stubs=1, seed=5)
        assert graph.number_of_edges == graph.number_of_nodes - 1

    def test_reproducible_with_seed(self):
        a = generate_pa(100, stubs=2, hard_cutoff=10, seed=42)
        b = generate_pa(100, stubs=2, hard_cutoff=10, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_pa(100, stubs=2, seed=1)
        b = generate_pa(100, stubs=2, seed=2)
        assert a != b


class TestHardCutoff:
    def test_cutoff_is_respected(self):
        for cutoff in (5, 10, 20):
            graph = generate_pa(300, stubs=2, hard_cutoff=cutoff, seed=3)
            assert graph.max_degree() <= cutoff

    def test_no_cutoff_grows_hubs(self):
        bounded = generate_pa(500, stubs=2, hard_cutoff=10, seed=4)
        unbounded = generate_pa(500, stubs=2, hard_cutoff=None, seed=4)
        assert unbounded.max_degree() > bounded.max_degree()

    def test_cutoff_accumulation_spike(self):
        """Many nodes pile up exactly at k = kc (the paper's Fig. 1b)."""
        graph = generate_pa(1000, stubs=2, hard_cutoff=8, seed=5)
        at_cutoff = sum(1 for k in graph.degree_sequence() if k == 8)
        just_below = sum(1 for k in graph.degree_sequence() if k == 7)
        assert at_cutoff > just_below

    def test_cutoff_equal_to_stubs_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_pa(100, stubs=3, hard_cutoff=3, seed=1)


class TestStrategies:
    def test_attempt_strategy_matches_invariants(self):
        graph = generate_pa(80, stubs=2, hard_cutoff=10, seed=7, strategy="attempt")
        assert graph.number_of_nodes == 80
        assert graph.max_degree() <= 10
        assert graph.min_degree() >= 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            PreferentialAttachmentGenerator(100, strategy="magic")

    def test_strategies_produce_similar_mean_degree(self):
        roulette = generate_pa(300, stubs=2, seed=11, strategy="roulette")
        attempt = generate_pa(300, stubs=2, seed=11, strategy="attempt")
        assert roulette.mean_degree() == pytest.approx(attempt.mean_degree(), rel=0.05)

    def test_degree_proportional_attachment_prefers_hubs(self):
        """Early (old) nodes should end with higher average degree than late ones."""
        graph = generate_pa(600, stubs=1, seed=13)
        early = [graph.degree(node) for node in range(20)]
        late = [graph.degree(node) for node in range(580, 600)]
        assert sum(early) / len(early) > sum(late) / len(late)


class TestGeneratorInterface:
    def test_generation_result_metadata(self):
        generator = PreferentialAttachmentGenerator(100, stubs=2, hard_cutoff=10, seed=1)
        result = generator.generate()
        assert result.model == "pa"
        assert result.parameters["hard_cutoff"] == 10
        assert "rejected_attempts" in result.metadata
        assert result.elapsed_seconds >= 0.0
        summary = result.summary()
        assert summary["stats"]["number_of_nodes"] == 100

    def test_uses_global_information_flag(self):
        assert PreferentialAttachmentGenerator.uses_global_information == "yes"

    def test_explicit_rng_overrides_seed(self):
        generator = PreferentialAttachmentGenerator(100, stubs=1, seed=1)
        a = generator.generate_graph(rng=99)
        b = generator.generate_graph(rng=99)
        c = generator.generate_graph(rng=100)
        assert a == b
        assert a != c
