"""Unit tests for the shared figure-harness helpers (figures._common)."""

from __future__ import annotations

import pytest

from repro.experiments.figures._common import (
    build_graph,
    cutoff_grid,
    dapa_cutoff_grid,
    dapa_tau_sub_grid,
    degree_distribution_series,
    exponent_vs_cutoff_series,
    flooding_series,
    messaging_series,
    normalized_flooding_series,
    random_walk_series,
    resolve_scale,
)
from repro.experiments.runner import ExperimentScale


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.smoke()


class TestResolveScaleAndGrids:
    def test_default_scale_is_small(self):
        assert resolve_scale(None, None).name == "small"

    def test_seed_override(self, scale):
        assert resolve_scale(scale, 123).seed == 123
        assert resolve_scale(scale, None).seed == scale.seed

    def test_grids_shrink_for_smoke(self, scale):
        assert len(cutoff_grid(scale)) < len(cutoff_grid(ExperimentScale.small()))
        assert len(dapa_tau_sub_grid(scale)) < len(
            dapa_tau_sub_grid(ExperimentScale.paper())
        )
        assert None in dapa_cutoff_grid(scale)


class TestBuildGraph:
    @pytest.mark.parametrize("model", ["pa", "cm", "hapa", "dapa"])
    def test_every_model_builds(self, model, scale):
        graph = build_graph(model, scale, seed=1, stubs=1, hard_cutoff=10)
        assert graph.number_of_nodes > 0
        assert graph.max_degree() <= 10

    def test_search_size_differs_from_distribution_size(self, scale):
        distribution_graph = build_graph("pa", scale, seed=1, stubs=1)
        search_graph = build_graph("pa", scale, seed=1, stubs=1, for_search=True)
        assert distribution_graph.number_of_nodes == scale.nodes
        assert search_graph.number_of_nodes == scale.search_nodes

    def test_unknown_model_rejected(self, scale):
        with pytest.raises(ValueError):
            build_graph("chord", scale, seed=1)


class TestSeriesBuilders:
    def test_degree_distribution_series(self, scale):
        series = degree_distribution_series(
            "pa", label="P(k) m=1, kc=10", scale=scale, stubs=1, hard_cutoff=10
        )
        assert series.label.startswith("P(k)")
        assert abs(sum(series.y) - 1.0) < 1e-9
        assert max(series.x) <= 10
        assert series.metadata["model"] == "pa"

    def test_exponent_vs_cutoff_series(self, scale):
        series = exponent_vs_cutoff_series(
            "pa", label="gamma vs kc", scale=scale, stubs=2, cutoffs=[10, 40]
        )
        assert len(series.x) == len(series.y) <= 2
        assert all(1.0 < gamma < 5.0 for gamma in series.y)

    def test_flooding_series_monotone(self, scale):
        series = flooding_series("pa", "fl", scale, stubs=2, hard_cutoff=10)
        assert series.x == scale.flooding_ttl_grid()
        assert all(b >= a for a, b in zip(series.y, series.y[1:]))
        assert series.metadata["algorithm"] == "fl"

    def test_normalized_flooding_series(self, scale):
        series = normalized_flooding_series("pa", "nf", scale, stubs=2, hard_cutoff=10)
        assert series.x == scale.ttl_grid()
        assert series.metadata["algorithm"] == "nf"
        assert len(series.metadata["mean_messages"]) == len(series.x)

    def test_random_walk_series(self, scale):
        series = random_walk_series("pa", "rw", scale, stubs=2, hard_cutoff=10)
        assert series.metadata["algorithm"] == "rw"
        assert all(value >= 0 for value in series.y)

    def test_messaging_series(self, scale):
        series = messaging_series(
            "pa", "nf msgs", scale, algorithm="nf", stubs=2, hard_cutoff=10
        )
        assert series.metadata["metric"] == "messages"
        assert all(b >= a for a, b in zip(series.y, series.y[1:]))

    def test_messaging_series_rejects_unknown_algorithm(self, scale):
        with pytest.raises(ValueError):
            messaging_series("pa", "x", scale, algorithm="dht")

    def test_series_reproducible(self, scale):
        a = flooding_series("pa", "same-label", scale, stubs=1, hard_cutoff=10)
        b = flooding_series("pa", "same-label", scale, stubs=1, hard_cutoff=10)
        assert a.y == b.y


class TestHapaNonPaperCap:
    """The HAPA size cap: distribution builds only, never search builds.

    The pre-scenario code spelled the cap as ``min(nodes, 2000 if not
    for_search else nodes)`` — a no-op for ``for_search=True`` that made the
    intent invisible.  These tests pin the now-explicit behaviour.
    """

    def _scale(self, name):
        return ExperimentScale(
            name=name, nodes=2300, search_nodes=2100, substrate_nodes=2300,
            realizations=1, queries=5,
        )

    def test_distribution_build_is_capped_below_paper_scale(self):
        from repro.scenarios.measure import HAPA_NONPAPER_NODE_CAP

        graph = build_graph("hapa", self._scale("custom"), seed=3, stubs=1)
        assert graph.number_of_nodes == HAPA_NONPAPER_NODE_CAP == 2000

    def test_search_build_is_never_capped(self):
        graph = build_graph(
            "hapa", self._scale("custom"), seed=3, stubs=1, for_search=True
        )
        assert graph.number_of_nodes == 2100

    def test_paper_scale_is_never_capped(self):
        graph = build_graph("hapa", self._scale("paper"), seed=3, stubs=1)
        assert graph.number_of_nodes == 2300


class TestShimsDelegateToScenarioCompiler:
    """Pin that the legacy ``*_series`` helpers are compiler shims."""

    @pytest.fixture
    def captured_plans(self, monkeypatch):
        import repro.experiments.figures._common as common
        from repro.experiments.results import Series

        plans = []

        def fake_run_series_plan(plan, scale):
            plans.append(plan)
            return [Series(label=plan.label, x=[1], y=[1.0])]

        monkeypatch.setattr(common, "run_series_plan", fake_run_series_plan)
        return plans

    def test_flooding_series_delegates(self, scale, captured_plans):
        series = flooding_series("pa", "lbl", scale, stubs=2, hard_cutoff=10)
        assert series.label == "lbl"
        (plan,) = captured_plans
        assert plan.kind == "search-curve"
        assert plan.algorithm == "fl"
        assert plan.topology == {"model": "pa", "stubs": 2, "hard_cutoff": 10,
                                 "exponent": 3.0, "tau_sub": 4}

    def test_every_series_helper_delegates(self, scale, captured_plans):
        degree_distribution_series("pa", "a", scale)
        normalized_flooding_series("pa", "b", scale)
        random_walk_series("pa", "c", scale)
        messaging_series("pa", "d", scale, algorithm="nf")
        exponent_vs_cutoff_series("pa", "e", scale, stubs=1, cutoffs=[10])
        assert [(p.kind, p.algorithm) for p in captured_plans] == [
            ("degree-distribution", None),
            ("search-curve", "nf"),
            ("search-curve", "rw"),
            ("messaging", "nf"),
            ("exponent-vs-cutoff", None),
        ]
        assert captured_plans[-1].params == {"cutoffs": [10]}
        assert captured_plans[-1].topology["tau_sub"] == 10  # legacy default
