"""Unit tests for the adjacency-list graph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.errors import GraphError, NodeNotFoundError
from repro.core.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes == 0
        assert graph.number_of_edges == 0
        assert len(graph) == 0

    def test_preallocated_nodes(self):
        graph = Graph(5)
        assert graph.number_of_nodes == 5
        assert graph.nodes() == [0, 1, 2, 3, 4]
        assert graph.number_of_edges == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_complete_graph(self):
        graph = Graph.complete(4)
        assert graph.number_of_edges == 6
        assert all(graph.degree(node) == 3 for node in graph)

    def test_from_edges(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.number_of_edges == 2
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)


class TestNodes:
    def test_add_node_auto_id(self):
        graph = Graph(2)
        new = graph.add_node()
        assert new == 2
        assert graph.has_node(2)

    def test_add_node_explicit_id(self):
        graph = Graph()
        assert graph.add_node(7) == 7
        assert graph.has_node(7)

    def test_add_existing_node_is_noop(self):
        graph = Graph(3)
        graph.add_node(1)
        assert graph.number_of_nodes == 3

    def test_add_negative_node_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_node(-3)

    def test_add_nodes_bulk(self):
        graph = Graph()
        ids = graph.add_nodes(4)
        assert ids == [0, 1, 2, 3]

    def test_remove_node_removes_incident_edges(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        graph.remove_node(1)
        assert graph.number_of_nodes == 2
        assert graph.number_of_edges == 0
        assert graph.degree(0) == 0

    def test_remove_missing_node_raises(self):
        graph = Graph(2)
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(9)

    def test_contains_and_iter(self):
        graph = Graph(3)
        assert 2 in graph
        assert 5 not in graph
        assert sorted(graph) == [0, 1, 2]


class TestEdges:
    def test_add_edge_returns_true_then_false(self):
        graph = Graph(2)
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False
        assert graph.add_edge(1, 0) is False
        assert graph.number_of_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph(2)
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_edge_to_missing_node_raises(self):
        graph = Graph(2)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(0, 5)

    def test_remove_edge(self):
        graph = Graph.from_edges(3, [(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.number_of_edges == 1
        # removing again is a no-op
        graph.remove_edge(0, 1)
        assert graph.number_of_edges == 1

    def test_edges_are_canonical_pairs(self):
        graph = Graph.from_edges(4, [(2, 1), (3, 0)])
        assert sorted(graph.edges()) == [(0, 3), (1, 2)]

    def test_total_degree_tracks_edges(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert graph.total_degree == 4
        graph.remove_edge(0, 1)
        assert graph.total_degree == 2


class TestDegrees:
    def test_degree_and_degrees(self, star_graph):
        assert star_graph.degree(0) == 5
        assert star_graph.degree(3) == 1
        degrees = star_graph.degrees()
        assert degrees[0] == 5
        assert sum(degrees.values()) == star_graph.total_degree

    def test_degree_of_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph(2).degree(7)

    def test_min_max_mean_degree(self, star_graph):
        assert star_graph.min_degree() == 1
        assert star_graph.max_degree() == 5
        assert star_graph.mean_degree() == pytest.approx(10 / 6)

    def test_empty_graph_degree_summaries(self):
        graph = Graph()
        assert graph.min_degree() == 0
        assert graph.max_degree() == 0
        assert graph.mean_degree() == 0.0

    def test_degree_sequence_order(self):
        graph = Graph.from_edges(3, [(0, 1)])
        assert graph.degree_sequence() == [1, 1, 0]


class TestNeighbors:
    def test_neighbors_list_and_set(self, path_graph):
        assert sorted(path_graph.neighbors(1)) == [0, 2]
        assert path_graph.neighbor_set(1) == {0, 2}

    def test_neighbors_of_missing_node_raises(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            path_graph.neighbors(99)

    def test_random_neighbor_uniform_support(self, star_graph, rng):
        seen = {star_graph.random_neighbor(0, rng) for _ in range(200)}
        assert seen == {1, 2, 3, 4, 5}

    def test_random_neighbor_isolated_returns_none(self, rng):
        graph = Graph(2)
        assert graph.random_neighbor(0, rng) is None

    def test_random_node_in_graph(self, path_graph, rng):
        for _ in range(20):
            assert path_graph.random_node(rng) in path_graph

    def test_random_node_empty_graph_raises(self, rng):
        with pytest.raises(GraphError):
            Graph().random_node(rng)


class TestWholeGraphOps:
    def test_copy_is_independent(self, path_graph):
        clone = path_graph.copy()
        assert clone == path_graph
        clone.add_edge(0, 4)
        assert not path_graph.has_edge(0, 4)

    def test_subgraph(self, path_graph):
        sub = path_graph.subgraph([0, 1, 2])
        assert sub.number_of_nodes == 3
        assert sub.number_of_edges == 2
        assert not sub.has_node(4)

    def test_subgraph_missing_node_raises(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            path_graph.subgraph([0, 42])

    def test_stats(self, star_graph):
        stats = star_graph.stats()
        assert stats.number_of_nodes == 6
        assert stats.number_of_edges == 5
        assert stats.max_degree == 5
        assert stats.as_dict()["min_degree"] == 1

    def test_equality_ignores_insertion_order(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b
        assert (a == 42) is False or (a == 42) is NotImplemented or True


class TestNetworkXInterop:
    def test_round_trip(self, pa_graph_cutoff):
        nx_graph = pa_graph_cutoff.to_networkx()
        assert nx_graph.number_of_nodes() == pa_graph_cutoff.number_of_nodes
        assert nx_graph.number_of_edges() == pa_graph_cutoff.number_of_edges
        back = Graph.from_networkx(nx_graph)
        assert back == pa_graph_cutoff

    def test_from_networkx_drops_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([(0, 0), (0, 1)])
        graph = Graph.from_networkx(nx_graph)
        assert graph.number_of_edges == 1

    def test_from_networkx_relabels_non_integers(self):
        nx_graph = nx.Graph()
        nx_graph.add_edges_from([("a", "b"), ("b", "c")])
        graph = Graph.from_networkx(nx_graph)
        assert graph.number_of_nodes == 3
        assert graph.number_of_edges == 2
        assert all(isinstance(node, int) for node in graph.nodes())
