"""Unit tests for the 2-D mesh substrate."""

from __future__ import annotations

import pytest

from repro.analysis.components import is_connected
from repro.core.errors import ConfigurationError
from repro.substrate.mesh import MeshNetwork, generate_mesh


class TestMesh:
    def test_node_and_edge_count_open_boundary(self):
        graph = generate_mesh(4, 5)
        assert graph.number_of_nodes == 20
        # rows*(cols-1) horizontal + (rows-1)*cols vertical
        assert graph.number_of_edges == 4 * 4 + 3 * 5

    def test_corner_edge_interior_degrees(self):
        mesh = MeshNetwork(5, 5)
        graph = mesh.generate_graph()
        assert graph.degree(mesh.node_id(0, 0)) == 2  # corner
        assert graph.degree(mesh.node_id(0, 2)) == 3  # edge
        assert graph.degree(mesh.node_id(2, 2)) == 4  # interior

    def test_torus_all_degrees_four(self):
        graph = generate_mesh(5, 6, torus=True)
        assert set(graph.degree_sequence()) == {4}

    def test_torus_edge_count(self):
        graph = generate_mesh(5, 6, torus=True)
        assert graph.number_of_edges == 2 * 5 * 6

    def test_connected(self):
        assert is_connected(generate_mesh(7, 3))
        assert is_connected(generate_mesh(4, 4, torus=True))

    def test_node_id_and_position_round_trip(self):
        mesh = MeshNetwork(6, 9)
        for row in (0, 3, 5):
            for column in (0, 4, 8):
                node = mesh.node_id(row, column)
                assert mesh.position(node) == (row, column)

    def test_minimum_dimensions(self):
        with pytest.raises(ConfigurationError):
            MeshNetwork(1, 10)
        with pytest.raises(ConfigurationError):
            MeshNetwork(10, 1)

    def test_parameters(self):
        mesh = MeshNetwork(3, 4, torus=True)
        params = mesh.parameters()
        assert params == {"substrate": "mesh", "rows": 3, "columns": 4, "torus": True}

    def test_deterministic_regardless_of_rng(self):
        a = MeshNetwork(4, 4).generate_graph(rng=1)
        b = MeshNetwork(4, 4).generate_graph(rng=999)
        assert a == b

    def test_two_column_torus_no_duplicate_edges(self):
        graph = generate_mesh(4, 2, torus=True)
        edges = graph.edges()
        assert len(edges) == len(set(edges))
