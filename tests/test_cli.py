"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("list", "figure", "generate", "search", "churn"):
            assert command in text


class TestListCommand:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1" in output
        assert "table2" in output


class TestGenerateCommand:
    def test_generate_pa_prints_summary(self, capsys):
        code = main(
            ["generate", "pa", "--nodes", "300", "--stubs", "2", "--cutoff", "10",
             "--seed", "1"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["number_of_nodes"] == 300
        assert payload["stats"]["max_degree"] <= 10

    def test_generate_with_fit_and_edge_list(self, capsys, tmp_path):
        out_file = tmp_path / "edges.txt"
        code = main(
            ["generate", "pa", "--nodes", "400", "--stubs", "2", "--seed", "2",
             "--fit", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert len(out_file.read_text().splitlines()) > 300
        output = capsys.readouterr().out
        assert "power_law_fit" in output

    def test_generate_dapa_uses_tau_sub(self, capsys):
        code = main(
            ["generate", "dapa", "--nodes", "100", "--stubs", "1", "--tau-sub", "3",
             "--seed", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameters"]["local_ttl"] == 3

    def test_invalid_parameters_return_error_code(self, capsys):
        code = main(["generate", "pa", "--nodes", "100", "--stubs", "5", "--cutoff", "2"])
        assert code == 1
        assert "error" in capsys.readouterr().err.lower()


class TestSearchCommand:
    def test_search_outputs_curve(self, capsys):
        code = main(
            ["search", "nf", "--model", "pa", "--nodes", "300", "--stubs", "2",
             "--cutoff", "10", "--ttl", "4", "--queries", "10", "--seed", "5"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "nf"
        assert len(payload["mean_hits"]) == 4

    def test_search_rw_normalized(self, capsys):
        code = main(
            ["search", "rw", "--model", "pa", "--nodes", "200", "--stubs", "2",
             "--ttl", "3", "--queries", "5", "--seed", "6"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metadata"]["normalization"] == "nf_messages"


class TestFigureCommand:
    def test_figure_table2_smoke(self, capsys, tmp_path):
        code = main(["figure", "table2", "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table2.json").exists()
        assert (tmp_path / "table2.csv").exists()
        assert "table2" in capsys.readouterr().out

    def test_unknown_figure_is_an_error(self, capsys):
        assert main(["figure", "fig99", "--scale", "smoke"]) == 1


class TestChurnCommand:
    def test_churn_outputs_report(self, capsys):
        code = main(
            ["churn", "--peers", "20", "--duration", "10", "--arrival-rate", "1",
             "--session", "20", "--cutoff", "6", "--seed", "7"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cutoff_violations"] == 0
        assert payload["joins"] >= 0
