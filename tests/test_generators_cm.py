"""Unit tests for the configuration-model generator."""

from __future__ import annotations

import pytest

from repro.analysis.components import is_connected
from repro.core.errors import ConfigurationError
from repro.generators.cm import ConfigurationModelGenerator, generate_cm


class TestBasicProperties:
    def test_node_count(self):
        graph = generate_cm(300, exponent=2.5, min_degree=2, hard_cutoff=20, seed=1)
        assert graph.number_of_nodes == 300

    def test_cutoff_respected(self):
        graph = generate_cm(500, exponent=2.2, min_degree=1, hard_cutoff=15, seed=2)
        assert graph.max_degree() <= 15

    def test_reproducible(self):
        a = generate_cm(200, exponent=2.5, min_degree=2, hard_cutoff=20, seed=5)
        b = generate_cm(200, exponent=2.5, min_degree=2, hard_cutoff=20, seed=5)
        assert a == b

    def test_no_self_loops_or_multi_edges_by_construction(self):
        graph = generate_cm(300, exponent=2.2, min_degree=2, hard_cutoff=50, seed=3)
        edges = graph.edges()
        assert len(edges) == len(set(edges))
        assert all(u != v for u, v in edges)

    def test_mean_degree_tracks_prescription(self):
        """Realised mean degree should be close to the truncated power-law mean."""
        from repro.generators.degree_sequence import expected_mean_degree

        graph = generate_cm(2000, exponent=2.5, min_degree=2, hard_cutoff=30, seed=7)
        expected = expected_mean_degree(2.5, 2, 30)
        assert graph.mean_degree() == pytest.approx(expected, rel=0.15)


class TestDeletionSideEffects:
    def test_metadata_counts_removals(self):
        generator = ConfigurationModelGenerator(
            400, exponent=2.2, min_degree=2, hard_cutoff=None, seed=11
        )
        result = generator.generate()
        metadata = result.metadata
        assert metadata["removed_self_loops"] >= 0
        assert metadata["removed_multi_edges"] >= 0
        assert metadata["prescribed_total_degree"] % 2 == 0

    def test_nodes_below_min_degree_possible_but_rare(self):
        generator = ConfigurationModelGenerator(
            1000, exponent=2.5, min_degree=2, hard_cutoff=40, seed=13
        )
        result = generator.generate()
        below = result.metadata["nodes_below_min_degree"]
        assert below <= 0.05 * 1000

    def test_m1_typically_disconnected(self):
        """The paper: 'the network is not a connected network when m=1'."""
        disconnected = 0
        for seed in range(4):
            graph = generate_cm(400, exponent=2.5, min_degree=1, hard_cutoff=20, seed=seed)
            if not is_connected(graph):
                disconnected += 1
        assert disconnected >= 3


class TestExplicitDegreeSequence:
    def test_explicit_sequence_used(self):
        sequence = [2] * 100
        graph = generate_cm(100, degree_sequence=sequence, seed=1)
        assert graph.number_of_nodes == 100
        assert graph.max_degree() <= 2

    def test_explicit_sequence_validation(self):
        with pytest.raises(ConfigurationError):
            generate_cm(10, degree_sequence=[1] * 9)  # wrong length
        with pytest.raises(ConfigurationError):
            generate_cm(3, degree_sequence=[1, 1, 1])  # odd sum
        with pytest.raises(ConfigurationError):
            generate_cm(2, degree_sequence=[-1, 1])  # negative


class TestUniformPartnerMode:
    def test_paper_literal_algorithm_runs(self):
        graph = generate_cm(
            200, exponent=2.5, min_degree=1, hard_cutoff=20, seed=3,
            partner_selection="uniform",
        )
        assert graph.number_of_nodes == 200
        edges = graph.edges()
        assert all(u != v for u, v in edges)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfigurationModelGenerator(100, partner_selection="bogus")


class TestGeneratorInterface:
    def test_parameters_and_flags(self):
        generator = ConfigurationModelGenerator(
            100, exponent=2.6, min_degree=2, hard_cutoff=10, seed=4
        )
        params = generator.parameters()
        assert params["exponent"] == 2.6
        assert params["hard_cutoff"] == 10
        assert ConfigurationModelGenerator.uses_global_information == "yes"

    def test_invalid_configuration_surface(self):
        with pytest.raises(ConfigurationError):
            ConfigurationModelGenerator(100, exponent=0.5)
