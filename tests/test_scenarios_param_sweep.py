"""Measurement-parameter sweep axes (``params.*``) in the scenario grammar.

ROADMAP follow-up from PR 3: a :class:`~repro.scenarios.spec.SweepSpec`
axis can now range over *measurement* parameters — PF forward probability,
RW walker count, any composite kind's knobs — alongside the topology
fields.  These tests pin the grammar (round trip, canonical hash, eager
validation), the compiler's topology/params split, and an end-to-end run.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ScenarioError
from repro.experiments.runner import ExperimentScale
from repro.scenarios import ScenarioSpec, compile_scenario, run_scenario

PF_SWEEP = {
    "id": "pf-prob-sweep",
    "title": "PF forward-probability sweep on CM",
    "topology": {"model": "cm", "exponent": 2.6, "stubs": 2, "hard_cutoff": 10},
    "sweep": {"axes": {"params.forward_probability": [0.3, 0.9]}},
    "label": "pf p={forward_probability}, {kc}",
    "measurement": {"kind": "search-curve", "algorithm": "pf"},
}


class TestGrammar:
    def test_round_trip_and_hash_stability(self):
        spec = ScenarioSpec.from_dict(PF_SWEEP)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        assert ScenarioSpec.from_json(spec.to_json()).spec_hash() == spec.spec_hash()

    def test_param_values_change_the_hash(self):
        spec = ScenarioSpec.from_dict(PF_SWEEP)
        other = ScenarioSpec.from_dict(
            {**PF_SWEEP, "sweep": {"axes": {"params.forward_probability": [0.3, 0.8]}}}
        )
        assert spec.spec_hash() != other.spec_hash()

    def test_mixed_topology_and_param_axes(self):
        spec = ScenarioSpec.from_dict({
            **PF_SWEEP,
            "sweep": {"axes": {
                "hard_cutoff": [10, None],
                "params.forward_probability": [0.3, 0.9],
            }},
        })
        plans = compile_scenario(spec, ExperimentScale.smoke())
        # grid expansion: outer axis = cutoff, inner (fastest) = probability
        assert [plan.label for plan in plans] == [
            "pf p=0.3, kc=10", "pf p=0.9, kc=10",
            "pf p=0.3, no kc", "pf p=0.9, no kc",
        ]
        assert plans[0].topology["hard_cutoff"] == 10
        assert plans[0].params == {"forward_probability": 0.3}
        assert plans[-1].topology["hard_cutoff"] is None
        assert plans[-1].params == {"forward_probability": 0.9}

    def test_walker_axis_for_rw(self):
        spec = ScenarioSpec.from_dict({
            "id": "rw-walkers", "title": "RW walker-count sweep",
            "topology": {"model": "pa", "stubs": 2},
            "sweep": {"axes": {"params.walkers": [1, 4]}},
            "label": "rw w={walkers}",
            "measurement": {"kind": "search-curve", "algorithm": "rw"},
        })
        plans = compile_scenario(spec, ExperimentScale.smoke())
        assert [plan.params["walkers"] for plan in plans] == [1, 4]

    def test_invalid_later_axis_value_rejected_eagerly(self):
        # Not just the first value: a bad value anywhere in the sweep must
        # fail at spec time, before any realization work runs.
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({
                **PF_SWEEP,
                "sweep": {"axes": {"params.forward_probability": [0.3, 1.7]}},
            })

    def test_unknown_param_rejected_eagerly(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({
                **PF_SWEEP,
                "sweep": {"axes": {"params.bogus_knob": [1, 2]}},
                "label": "pf {bogus_knob}",
            })

    def test_bare_measurement_axis_gets_a_prefix_hint(self):
        with pytest.raises(ScenarioError, match="params.walkers"):
            ScenarioSpec.from_dict({
                "id": "bad", "title": "t", "topology": {"model": "pa"},
                "sweep": {"axes": {"walkers": [1, 2]}},
                "label": "x",
                "measurement": {"kind": "search-curve", "algorithm": "rw"},
            })

    def test_empty_param_name_rejected(self):
        with pytest.raises(ScenarioError, match="names no measurement"):
            ScenarioSpec.from_dict({
                **PF_SWEEP,
                "sweep": {"axes": {"params.": [1, 2]}},
            })

    def test_sweep_point_overrides_measurement_params(self):
        spec = ScenarioSpec.from_dict({
            **PF_SWEEP,
            "measurement": {
                "kind": "search-curve", "algorithm": "pf",
                "params": {"forward_probability": 0.5},
            },
        })
        plans = compile_scenario(spec, ExperimentScale.smoke())
        assert [plan.params["forward_probability"] for plan in plans] == [0.3, 0.9]


class TestExecution:
    def test_end_to_end_run_produces_distinct_series(self, smoke_scale):
        result = run_scenario(
            ScenarioSpec.from_dict(PF_SWEEP), scale=smoke_scale
        )
        assert result.labels() == ["pf p=0.3, kc=10", "pf p=0.9, kc=10"]
        low, high = result.series
        # More forwarding probability -> at least as many hits everywhere,
        # strictly more somewhere (the whole point of sweeping p).
        assert all(h >= l for l, h in zip(low.y, high.y))
        assert high.y[-1] > low.y[-1]
