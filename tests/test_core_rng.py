"""Unit tests for the seedable random source."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import DEFAULT_SEED, RandomSource, ensure_source


class TestScalarDraws:
    def test_reproducibility_with_same_seed(self):
        a = [RandomSource(seed=5).random() for _ in range(5)]
        b = [RandomSource(seed=5).random() for _ in range(5)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [RandomSource(seed=1).random() for _ in range(5)]
        b = [RandomSource(seed=2).random() for _ in range(5)]
        assert a != b

    def test_random_in_unit_interval(self, rng):
        values = [rng.random() for _ in range(100)]
        assert all(0.0 <= value < 1.0 for value in values)

    def test_randint_inclusive_bounds(self, rng):
        values = {rng.randint(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_randint_empty_range_raises(self, rng):
        with pytest.raises(ValueError):
            rng.randint(5, 3)

    def test_uniform_range(self, rng):
        values = [rng.uniform(-2.0, 2.0) for _ in range(50)]
        assert all(-2.0 <= value <= 2.0 for value in values)

    def test_expovariate_positive(self, rng):
        assert rng.expovariate(2.0) > 0

    def test_expovariate_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            rng.expovariate(0.0)

    def test_seed_property(self):
        assert RandomSource(seed=9).seed == 9
        assert RandomSource().seed is None


class TestCollectionDraws:
    def test_choice_from_sequence(self, rng):
        assert rng.choice([7]) == 7
        assert rng.choice(["a", "b"]) in ("a", "b")

    def test_choice_empty_raises(self, rng):
        with pytest.raises(IndexError):
            rng.choice([])

    def test_sample_distinct_elements(self, rng):
        sample = rng.sample(list(range(10)), 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_sample_larger_than_population_returns_all(self, rng):
        sample = rng.sample([1, 2, 3], 10)
        assert sorted(sample) == [1, 2, 3]

    def test_shuffled_preserves_elements(self, rng):
        items = list(range(20))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_weighted_choice_respects_zero_weight(self, rng):
        values = {rng.weighted_choice(["x", "y"], [1.0, 0.0]) for _ in range(50)}
        assert values == {"x"}

    def test_weighted_choice_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            rng.weighted_choice([1, 2], [1.0])

    def test_weighted_index_distribution(self, rng):
        counts = [0, 0]
        for _ in range(2000):
            counts[rng.weighted_index([3.0, 1.0])] += 1
        assert counts[0] > counts[1]

    def test_weighted_index_zero_total_raises(self, rng):
        with pytest.raises(ValueError):
            rng.weighted_index([0.0, 0.0])


class TestDerivedSources:
    def test_spawn_is_deterministic_given_parent_seed(self):
        a = RandomSource(seed=3).spawn("child").random()
        b = RandomSource(seed=3).spawn("child").random()
        assert a == b

    def test_spawned_children_with_labels_differ(self):
        parent = RandomSource(seed=3)
        a = parent.spawn("one")
        b = parent.spawn("two")
        assert a.random() != b.random()

    def test_numpy_generator(self, rng):
        generator = rng.numpy_generator()
        assert isinstance(generator, np.random.Generator)
        assert 0.0 <= generator.random() < 1.0


class TestEnsureSource:
    def test_passthrough(self, rng):
        assert ensure_source(rng) is rng

    def test_from_int(self):
        assert isinstance(ensure_source(4), RandomSource)
        assert ensure_source(4).seed == 4

    def test_from_none(self):
        assert ensure_source(None).seed is None

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_source("not-a-seed")

    def test_default_seed_constant(self):
        assert isinstance(DEFAULT_SEED, int)
