"""Author, run, and cache a declarative scenario end to end.

The scenario layer (:mod:`repro.scenarios`) turns the paper's parameter
space — construction model × hard cutoff × stubs × search algorithm × TTL —
into *data*: a JSON-serializable :class:`~repro.scenarios.ScenarioSpec`
that compiles onto the same deterministic engine the built-in figures use.

This example:

1. loads ``examples/scenarios/pf_on_cm.json`` — probabilistic flooding (an
   algorithm no paper figure exercises) on CM topologies with a cutoff
   sweep — and shows the equivalent spec authored in Python;
2. runs it at a configurable scale, optionally across worker processes and
   against an on-disk result store (re-runs of any equivalent spelling of
   the spec are cache hits, because specs hash canonically);
3. prints the resulting series table.

Usage::

    PYTHONPATH=src python examples/custom_scenario.py \
        --scale smoke --jobs 2 --cache .repro-cache
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.engine.executor import executor_from_jobs
from repro.engine.store import ResultStore
from repro.experiments.runner import ExperimentScale
from repro.scenarios import ScenarioSpec, run_scenario_cached

SPEC_PATH = Path(__file__).resolve().parent / "scenarios" / "pf_on_cm.json"


def python_authored_spec() -> ScenarioSpec:
    """The same scenario written as a Python dict (hashes identically)."""
    return ScenarioSpec.from_dict({
        "id": "pf-on-cm-cutoff-sweep",
        "title": "Probabilistic flooding on CM with a cutoff sweep",
        "notes": (
            "A scenario no built-in figure covers: PF is never plotted in "
            "the paper, and here it sweeps the hard cutoff on "
            "prescribed-exponent CM topologies."
        ),
        "topology": {"model": "cm", "exponent": 2.6, "stubs": 2},
        "sweep": {"axes": {"hard_cutoff": [10, 40, None]}},
        "label": "pf m={m}, {kc}",
        "measurement": {
            "kind": "search-curve",
            "algorithm": "pf",
            "params": {"forward_probability": 0.5},
        },
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "small", "paper"])
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache", type=Path, default=None)
    args = parser.parse_args(argv)

    spec = ScenarioSpec.from_json(SPEC_PATH.read_text())
    # Equivalent spellings share one canonical hash (and one cache entry).
    assert spec.spec_hash() == python_authored_spec().spec_hash()

    store = ResultStore(args.cache) if args.cache is not None else None
    with executor_from_jobs(args.jobs) as executor:
        result, from_cache = run_scenario_cached(
            spec,
            scale=ExperimentScale.from_name(args.scale),
            executor=executor,
            store=store,
        )
    print(result.to_table())
    if store is not None:
        print(f"{'cache hit' if from_cache else 'computed and cached'} "
              f"under {store.root} (key includes {spec.spec_hash()[:12]}...)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
