#!/usr/bin/env python3
"""Drive `repro serve` end to end with nothing but the standard library.

This client:

1. starts a scenario service in-process on a free port (pass ``--url`` to
   talk to an already-running ``repro serve`` instead);
2. POSTs ``examples/scenarios/pf_on_cm.json`` with ``wait=0`` and tails the
   live NDJSON progress stream until the computation finishes;
3. fetches the finished result, POSTs the identical spec again, and shows
   the second answer coming back warm from the result store;
4. prints the service's ``/metrics`` counters.

Run with:  python examples/serve_client.py [--url http://127.0.0.1:8765]
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import tempfile
from pathlib import Path
from urllib.parse import urlsplit

SPEC_PATH = Path(__file__).parent / "scenarios" / "pf_on_cm.json"


def request(host: str, port: int, method: str, path: str, body=None):
    """One HTTP exchange; returns (status, parsed-JSON body)."""
    connection = http.client.HTTPConnection(host, port, timeout=600)
    try:
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def tail_events(host: str, port: int, spec_hash: str) -> None:
    """Stream /events line by line as the computation progresses."""
    connection = http.client.HTTPConnection(host, port, timeout=600)
    try:
        connection.request("GET", f"/scenarios/{spec_hash}/events")
        response = connection.getresponse()
        for raw_line in response:
            line = raw_line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.get("event", "?")
            if kind == "task-finished":
                print(f"    task {event.get('key')} in {event.get('seconds', 0):.2f}s")
            else:
                print(f"  event: {kind}")
    finally:
        connection.close()


def run_demo(host: str, port: int) -> None:
    spec_body = SPEC_PATH.read_bytes()

    print(f"== health ({host}:{port})")
    status, health = request(host, port, "GET", "/healthz")
    print(f"  {status} {health}")

    print("== cold POST (wait=0) + live event tail")
    status, accepted = request(host, port, "POST", "/scenarios?wait=0", spec_body)
    spec_hash = accepted["spec_hash"]
    print(f"  {status} status={accepted['status']} spec_hash={spec_hash[:16]}…")
    tail_events(host, port, spec_hash)

    status, finished = request(host, port, "GET", f"/scenarios/{spec_hash}")
    series = finished.get("result", {}).get("series", [])
    print(f"  {status} status={finished['status']} series={len(series)}")
    for entry in series:
        print(f"    {entry['label']}: {len(entry['x'])} points")

    print("== identical POST again (warm: answered from the store)")
    status, warm = request(host, port, "POST", "/scenarios", spec_body)
    print(f"  {status} status={warm['status']} from_cache={warm['from_cache']}")
    identical = warm.get("result") == finished.get("result")
    print(f"  results identical to first run: {identical}")

    print("== metrics")
    status, metrics = request(host, port, "GET", "/metrics")
    for name, value in sorted(metrics["counters"].items()):
        if name.startswith("serve."):
            print(f"  {name} = {value:g}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url", default=None,
        help="base URL of a running `repro serve` (default: start one "
             "in-process on a free port)",
    )
    args = parser.parse_args()

    if args.url:
        split = urlsplit(args.url if "//" in args.url else f"//{args.url}")
        run_demo(split.hostname or "127.0.0.1", split.port or 8765)
        return 0

    # No server given: bring the whole stack up in-process on a free port.
    import asyncio
    import threading

    from repro.engine.store import ResultStore
    from repro.serve import ScenarioService, ServeHTTP

    with tempfile.TemporaryDirectory() as cache_root:
        service = ScenarioService(
            store=ResultStore(cache_root), scale="smoke", workers=2
        )
        http_server = ServeHTTP(service, port=0)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(
            target=lambda: (asyncio.set_event_loop(loop), loop.run_forever()),
            daemon=True,
        )
        thread.start()
        asyncio.run_coroutine_threadsafe(http_server.start(), loop).result(30)
        print(f"started in-process service on port {http_server.port} "
              f"(cache: {cache_root})")
        try:
            run_demo(http_server.host, http_server.port)
        finally:
            asyncio.run_coroutine_threadsafe(http_server.close(), loop).result(30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
