#!/usr/bin/env python3
"""Gnutella-style file sharing on a bounded-degree overlay.

This example exercises the discrete-event simulation layer end to end —
exactly the scenario the paper's introduction motivates:

1. 400 peers join a live overlay with a hard cutoff of 12 neighbor-table
   entries, using the fully-local "discover" join rule (the DAPA rule);
2. a content catalog of 150 items with Zipf popularity is replicated across
   the peers;
3. a Poisson query workload searches for items using flooding, normalized
   flooding, and random walks, and we compare success rate, peers reached,
   and messaging cost per query.

Run with:  python examples/gnutella_file_sharing.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.simulation import (
    ContentCatalog,
    GnutellaProtocol,
    JoinStrategy,
    P2PNetwork,
    QueryWorkload,
)

PEERS = 400
HARD_CUTOFF = 12
STUBS = 3
CATALOG_ITEMS = 150
QUERY_TTL = 6
SEED = 7


def build_network() -> P2PNetwork:
    """Join PEERS peers with the local discover rule and bounded tables."""
    network = P2PNetwork(
        hard_cutoff=HARD_CUTOFF,
        stubs=STUBS,
        join_strategy=JoinStrategy.DISCOVER,
        horizon=2,
        rng=SEED,
    )
    for _ in range(PEERS):
        network.join()
    return network


def place_content(network: P2PNetwork) -> ContentCatalog:
    """Create the catalog and hand replicas to random peers."""
    catalog = ContentCatalog(
        number_of_items=CATALOG_ITEMS, skew=1.0, replication="proportional",
        replicas_per_item=4,
    )
    placement = catalog.place(network.online_peers(), rng=SEED + 1)
    for peer_id, items in placement.items():
        for keyword in items:
            network.peer(peer_id).share(keyword)
    return catalog


def main() -> None:
    network = build_network()
    graph = network.overlay_graph()
    print(
        f"overlay: {graph.number_of_nodes} peers, {graph.number_of_edges} links, "
        f"<k>={graph.mean_degree():.2f}, kmax={graph.max_degree()} "
        f"(cutoff {HARD_CUTOFF})"
    )

    catalog = place_content(network)
    workload = QueryWorkload(catalog, query_rate=3.0, duration=20.0, seed=SEED + 2)
    events = workload.generate(network.online_peers())
    print(f"workload: {len(events)} queries over {workload.duration} time units\n")

    summary = defaultdict(lambda: {"queries": 0, "hits": 0, "reached": 0, "messages": 0})
    for policy in ("fl", "nf", "rw"):
        protocol = GnutellaProtocol(
            network, policy=policy, k_min=STUBS, walkers=4, rng=SEED + 3
        )
        ttl = QUERY_TTL if policy != "rw" else QUERY_TTL * 8  # walks need more hops
        for _, source, keyword in events:
            stats = protocol.query(source, keyword, ttl=ttl)
            bucket = summary[policy]
            bucket["queries"] += 1
            bucket["hits"] += int(stats.success)
            bucket["reached"] += stats.peers_reached
            bucket["messages"] += stats.query_messages

    print(f"{'policy':<8s} {'success rate':>12s} {'peers/query':>12s} {'msgs/query':>12s}")
    for policy, bucket in summary.items():
        queries = max(1, bucket["queries"])
        print(
            f"{policy:<8s} {bucket['hits'] / queries:>12.2%} "
            f"{bucket['reached'] / queries:>12.1f} {bucket['messages'] / queries:>12.1f}"
        )

    print(
        "\nFlooding finds nearly everything but floods the network; NF keeps most of\n"
        "the success rate at a fraction of the messages; RW is cheapest per query\n"
        "but needs long walks (or many walkers) to match the hit rate."
    )


if __name__ == "__main__":
    main()
