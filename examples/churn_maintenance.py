#!/usr/bin/env python3
"""Topology maintenance under churn (the paper's future-work scenario).

Peers join (Poisson arrivals) and leave (exponential session lengths) a live
overlay whose peers cap their neighbor tables at a hard cutoff.  We compare
two join rules across the run:

* ``preferential`` — the PA rule, needing global degree knowledge;
* ``discover``     — the fully local DAPA-style rule.

For each we track, over simulated time, the number of online peers, the mean
and maximum degree, the giant-component fraction, and the fitted power-law
exponent — i.e. whether the "scale-free with a hard cutoff" shape survives
the dynamics, which is exactly the open question the paper's summary poses.

Run with:  python examples/churn_maintenance.py
"""

from __future__ import annotations

from repro.simulation import ChurnConfig, ChurnProcess, JoinStrategy

HARD_CUTOFF = 10
STUBS = 2
DURATION = 150.0
SEED = 23


def run_scenario(strategy: JoinStrategy) -> None:
    """Run one churn scenario and print its topology time series."""
    config = ChurnConfig(
        initial_peers=150,
        duration=DURATION,
        arrival_rate=3.0,
        mean_session_length=60.0,
        hard_cutoff=HARD_CUTOFF,
        stubs=STUBS,
        join_strategy=strategy,
        sample_interval=25.0,
        seed=SEED,
    )
    report = ChurnProcess(config).run()

    print(f"\n== join strategy: {strategy.value} ==")
    print(f"joins={report.joins}  leaves={report.leaves}  final peers={report.final_peers}")
    print(f"hard-cutoff violations observed: {report.cutoff_violations}")
    header = (
        f"{'time':>6s} {'peers':>6s} {'<k>':>6s} {'kmax':>5s} {'kmin':>5s} "
        f"{'giant%':>7s} {'gamma':>6s}"
    )
    print(header)
    for sample in report.samples:
        gamma = f"{sample.fitted_exponent:.2f}" if sample.fitted_exponent else "  n/a"
        print(
            f"{sample.time:>6.0f} {sample.peers:>6d} {sample.mean_degree:>6.2f} "
            f"{sample.max_degree:>5d} {sample.min_degree:>5d} "
            f"{sample.giant_component_fraction:>7.1%} {gamma:>6s}"
        )


def main() -> None:
    print(
        f"Churn study: hard cutoff kc={HARD_CUTOFF}, m={STUBS}, duration={DURATION}\n"
        "The maximum degree must never exceed the cutoff, the giant component\n"
        "should stay near 100%, and the degree distribution should keep a\n"
        "power-law-like exponent throughout."
    )
    run_scenario(JoinStrategy.PREFERENTIAL)
    run_scenario(JoinStrategy.DISCOVER)


if __name__ == "__main__":
    main()
