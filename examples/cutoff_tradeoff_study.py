#!/usr/bin/env python3
"""Hard-cutoff trade-off study: search efficiency vs per-peer state.

The paper's central question: how much search efficiency does a peer
community give up (or gain!) by capping the number of neighbor entries each
peer stores?  This example sweeps the hard cutoff kc over a wide range on PA
topologies for m = 1, 2, 3 and reports, for each (m, kc):

* the fitted power-law exponent of the degree distribution,
* flooding coverage at a fixed TTL (the "best possible" search),
* normalized-flooding hits at a fixed TTL (the practical search),
* NF messages per query (the cost side of the trade-off).

The table that comes out is the quantitative version of the paper's design
guideline: with m >= 2-3, even a very small cutoff costs almost nothing, and
for NF it is usually a net win.

Run with:  python examples/cutoff_tradeoff_study.py
"""

from __future__ import annotations

from repro import (
    FloodingSearch,
    NormalizedFloodingSearch,
    fit_power_law,
    generate_pa,
    search_curve,
)
from repro.core.errors import AnalysisError

NODES = 3000
CUTOFFS = [5, 10, 20, 40, 80, None]
STUBS = [1, 2, 3]
FL_TTL = 5
NF_TTL = 8
QUERIES = 60
SEED = 11


def row_for(stubs: int, cutoff: "int | None") -> dict:
    """Measure one (m, kc) cell of the trade-off table."""
    effective_cutoff = cutoff if cutoff is None or cutoff > stubs else stubs + 1
    graph = generate_pa(NODES, stubs=stubs, hard_cutoff=effective_cutoff, seed=SEED)
    try:
        gamma = fit_power_law(graph, k_min=stubs, exclude_cutoff_spike=True).exponent
    except AnalysisError:
        gamma = float("nan")

    fl = search_curve(graph, FloodingSearch(), [FL_TTL], queries=QUERIES, rng=SEED)
    nf = search_curve(
        graph, NormalizedFloodingSearch(k_min=stubs), [NF_TTL], queries=QUERIES, rng=SEED
    )
    return {
        "m": stubs,
        "kc": "none" if cutoff is None else cutoff,
        "gamma": gamma,
        "kmax": graph.max_degree(),
        "fl_hits": fl.mean_hits[0],
        "nf_hits": nf.mean_hits[0],
        "nf_msgs": nf.mean_messages[0],
    }


def main() -> None:
    print(
        f"PA topologies, N={NODES}; FL hits at tau={FL_TTL}, NF hits/messages at "
        f"tau={NF_TTL}, {QUERIES} queries per cell\n"
    )
    header = (
        f"{'m':>2s} {'kc':>6s} {'gamma':>7s} {'kmax':>6s} "
        f"{'FL hits':>9s} {'NF hits':>9s} {'NF msgs':>9s}"
    )
    print(header)
    print("-" * len(header))
    for stubs in STUBS:
        for cutoff in CUTOFFS:
            row = row_for(stubs, cutoff)
            print(
                f"{row['m']:>2d} {str(row['kc']):>6s} {row['gamma']:>7.2f} "
                f"{row['kmax']:>6d} {row['fl_hits']:>9.1f} {row['nf_hits']:>9.1f} "
                f"{row['nf_msgs']:>9.1f}"
            )
        print("-" * len(header))

    print(
        "\nReading the table: within each m block, walking up from kc=none to kc=5\n"
        "barely moves (or improves) the NF column while capping every peer's state\n"
        "— and the flooding penalty disappears once m reaches 2-3."
    )


if __name__ == "__main__":
    main()
