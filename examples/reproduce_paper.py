#!/usr/bin/env python3
"""Reproduce every figure and table of the paper in one run.

Runs the complete experiment registry (Figs. 1-4 and 6-12, Tables I-II, the
messaging study, and the two ablations) at the chosen scale and writes one
JSON + CSV pair per experiment into an output directory, plus a combined
text report.  At ``--scale small`` (default) the whole run takes on the
order of tens of minutes; ``--scale smoke`` finishes in a couple of minutes;
``--scale paper`` uses the paper's network sizes and is an overnight job.

Run with:  python examples/reproduce_paper.py --scale smoke --out results/
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import ExperimentScale, available_experiments, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", type=Path, default=Path("results"))
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="run only these experiment ids (default: all)",
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_name(args.scale)
    experiments = args.only if args.only else available_experiments()
    args.out.mkdir(parents=True, exist_ok=True)

    report_lines = []
    for experiment_id in experiments:
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale=scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        result.save_json(args.out / f"{experiment_id}.json")
        result.save_csv(args.out / f"{experiment_id}.csv")
        table = result.to_table()
        report_lines.append(table)
        report_lines.append(f"  [{elapsed:.1f}s]\n")
        print(table)
        print(f"  [{elapsed:.1f}s]\n")

    report_path = args.out / "report.txt"
    report_path.write_text("\n".join(report_lines))
    print(f"wrote per-experiment JSON/CSV and {report_path}")


if __name__ == "__main__":
    main()
