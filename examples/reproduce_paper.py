#!/usr/bin/env python3
"""Reproduce every figure and table of the paper in one run.

Runs the complete experiment registry (Figs. 1-4 and 6-12, Tables I-II, the
messaging study, and the two ablations) at the chosen scale and writes one
JSON + CSV pair per experiment into an output directory, plus a combined
text report.  At ``--scale small`` (default) the whole run takes on the
order of tens of minutes; ``--scale smoke`` finishes in a couple of minutes;
``--scale paper`` uses the paper's network sizes and is an overnight job —
which is where the engine options matter:

* ``--jobs N`` fans every experiment's topology realizations out over N
  worker processes (numerically identical to a serial run, because each
  realization carries its own deterministic seed);
* ``--cache DIR`` persists every completed experiment in a
  content-addressed result store, so an interrupted reproduction resumes
  from where it stopped instead of recomputing finished figures.

Run with:  python examples/reproduce_paper.py --scale smoke --out results/ \
               --jobs 4 --cache .repro-cache
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import ProgressReporter, ResultStore, executor_from_jobs, run_suite
from repro.experiments import ExperimentScale, available_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", type=Path, default=Path("results"))
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="run only these experiment ids (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for realization tasks (default: 1 = serial)",
    )
    parser.add_argument(
        "--cache", type=Path, default=None,
        help="result-store directory; completed experiments are reused on "
             "re-runs, making a full paper reproduction resumable",
    )
    parser.add_argument(
        "--backend", default="adj", choices=["adj", "csr"],
        help="graph backend for the search phase; 'csr' freezes each "
             "topology once and runs the vectorized kernels (byte-identical "
             "results, faster flooding figures)",
    )
    args = parser.parse_args()

    scale = ExperimentScale.from_name(args.scale)
    experiments = args.only if args.only else available_experiments()
    args.out.mkdir(parents=True, exist_ok=True)
    store = ResultStore(args.cache) if args.cache is not None else None
    progress = ProgressReporter(stream=sys.stderr)

    report_lines = []

    def save_entry(entry) -> None:
        # Persist and report each experiment as soon as it finishes, so an
        # interrupted run keeps every completed artefact on disk.
        entry.result.save_json(args.out / f"{entry.experiment_id}.json")
        entry.result.save_csv(args.out / f"{entry.experiment_id}.csv")
        table = entry.result.to_table()
        origin = "cache" if entry.from_cache else "computed"
        report_lines.append(table)
        report_lines.append(f"  [{entry.seconds:.1f}s, {origin}]\n")
        print(table)
        print(f"  [{entry.seconds:.1f}s, {origin}]\n")

    with executor_from_jobs(args.jobs) as executor:
        report = run_suite(
            experiments,
            scale=scale,
            seed=args.seed,
            executor=executor,
            store=store,
            progress=progress,
            on_result=save_entry,
            backend=args.backend,
        )

    report_lines.append(report.summary())
    report_path = args.out / "report.txt"
    report_path.write_text("\n".join(report_lines))
    print(report.summary())
    print(f"wrote per-experiment JSON/CSV and {report_path}")


if __name__ == "__main__":
    main()
