#!/usr/bin/env python3
"""Compare peer-join strategies for a live bounded-degree overlay.

The paper's Table II contrasts the construction mechanisms by how much
global information they need.  This example asks the follow-up question a
protocol designer cares about: if every peer enforces the same hard cutoff,
how much does the *join rule* actually change the resulting overlay and its
search performance?

Four join rules are compared on the live-network simulator (same peer count,
same cutoff, same seed):

* ``random``           — connect to uniformly random peers;
* ``preferential``     — the PA rule (global degree knowledge);
* ``hop_and_attempt``  — the HAPA rule (partial global knowledge);
* ``discover``         — the DAPA rule (fully local).

For each overlay we report degree statistics, the power-law fit, average path
length, and NF search efficiency.

Run with:  python examples/join_strategy_comparison.py
"""

from __future__ import annotations

from repro import (
    NormalizedFloodingSearch,
    fit_power_law,
    giant_component_fraction,
    path_length_statistics,
    search_curve,
)
from repro.core.errors import AnalysisError
from repro.simulation import JoinStrategy, P2PNetwork

PEERS = 600
HARD_CUTOFF = 10
STUBS = 2
NF_TTL = 8
SEED = 5


def build_overlay(strategy: JoinStrategy):
    """Grow a PEERS-node overlay with the given join rule."""
    network = P2PNetwork(
        hard_cutoff=HARD_CUTOFF,
        stubs=STUBS,
        join_strategy=strategy,
        horizon=2,
        rng=SEED,
    )
    for _ in range(PEERS):
        network.join()
    return network.overlay_graph()


def main() -> None:
    print(
        f"{PEERS} peers, hard cutoff kc={HARD_CUTOFF}, m={STUBS}; NF hits at "
        f"tau={NF_TTL}\n"
    )
    header = (
        f"{'strategy':<16s} {'<k>':>6s} {'kmax':>5s} {'giant%':>7s} "
        f"{'gamma':>6s} {'avg path':>9s} {'NF hits':>8s} {'NF msgs':>8s}"
    )
    print(header)
    print("-" * len(header))

    for strategy in JoinStrategy:
        graph = build_overlay(strategy)
        try:
            gamma = f"{fit_power_law(graph, k_min=STUBS, exclude_cutoff_spike=True).exponent:.2f}"
        except AnalysisError:
            gamma = "n/a"
        paths = path_length_statistics(graph, sample_size=100, rng=SEED)
        nf = search_curve(
            graph,
            NormalizedFloodingSearch(k_min=STUBS),
            [NF_TTL],
            queries=60,
            rng=SEED,
        )
        print(
            f"{strategy.value:<16s} {graph.mean_degree():>6.2f} {graph.max_degree():>5d} "
            f"{giant_component_fraction(graph):>7.1%} {gamma:>6s} "
            f"{paths.average:>9.2f} {nf.mean_hits[0]:>8.1f} {nf.mean_messages[0]:>8.1f}"
        )

    print(
        "\nAll four rules respect the cutoff.  The degree-aware rules (preferential,\n"
        "hop_and_attempt) give the shortest paths, while the more homogeneous\n"
        "topologies are at least as good for NF — the same effect that makes hard\n"
        "cutoffs help NF in the paper.  The discover rule pays a locality penalty\n"
        "(longer paths, fewer hits) but needs no global information at all, which\n"
        "is the trade-off the paper's Table II is about."
    )


if __name__ == "__main__":
    main()
