#!/usr/bin/env python3
"""Quickstart: build a scale-free overlay with a hard cutoff and search it.

This walks through the library's core loop in under a minute:

1. generate an overlay topology with each of the paper's four construction
   mechanisms (PA, CM, HAPA, DAPA), all with a hard cutoff of 20 links;
2. inspect the degree distribution and fit the power-law exponent;
3. measure flooding (FL), normalized flooding (NF), and random-walk (RW)
   search efficiency on the PA topology, with and without the cutoff.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FloodingSearch,
    NormalizedFloodingSearch,
    fit_power_law,
    generate_cm,
    generate_dapa,
    generate_hapa,
    generate_pa,
    is_connected,
    normalized_walk_curve,
    path_length_statistics,
    search_curve,
)

NODES = 3000
CUTOFF = 20
SEED = 42


def describe(name: str, graph) -> None:
    """Print a one-line topology summary plus a power-law fit when possible."""
    stats = graph.stats()
    line = (
        f"{name:<22s} N={stats.number_of_nodes:<6d} E={stats.number_of_edges:<7d} "
        f"<k>={stats.mean_degree:5.2f}  kmax={stats.max_degree:<5d} "
        f"connected={is_connected(graph)}"
    )
    try:
        fit = fit_power_law(graph, k_min=2, exclude_cutoff_spike=True)
        line += f"  gamma~{fit.exponent:.2f}"
    except Exception:  # a star-like or degenerate distribution has no exponent
        line += "  gamma=n/a"
    print(line)


def main() -> None:
    print(f"== Topologies (N={NODES}, hard cutoff kc={CUTOFF}) ==")
    pa_cut = generate_pa(NODES, stubs=2, hard_cutoff=CUTOFF, seed=SEED)
    pa_free = generate_pa(NODES, stubs=2, hard_cutoff=None, seed=SEED)
    cm = generate_cm(NODES, exponent=2.5, min_degree=2, hard_cutoff=CUTOFF, seed=SEED)
    hapa = generate_hapa(min(NODES, 2000), stubs=2, hard_cutoff=CUTOFF, seed=SEED)
    dapa = generate_dapa(NODES // 2, stubs=2, hard_cutoff=CUTOFF, local_ttl=6, seed=SEED)

    describe("PA  (kc=20)", pa_cut)
    describe("PA  (no cutoff)", pa_free)
    describe("CM  (gamma=2.5)", cm)
    describe("HAPA(kc=20)", hapa)
    describe("DAPA(tau_sub=6)", dapa)

    print("\n== Path lengths (sampled) ==")
    for name, graph in [("PA kc=20", pa_cut), ("PA no cutoff", pa_free)]:
        stats = path_length_statistics(graph, sample_size=100, rng=SEED)
        print(f"{name:<14s} avg={stats.average:.2f}  diameter>={stats.diameter}")

    print("\n== Search efficiency on the PA topology ==")
    ttl_fl = [1, 2, 3, 4, 5, 6]
    ttl_nf = [2, 4, 6, 8, 10]
    for name, graph in [("kc=20", pa_cut), ("no cutoff", pa_free)]:
        fl = search_curve(graph, FloodingSearch(), ttl_fl, queries=60, rng=SEED)
        nf = search_curve(
            graph, NormalizedFloodingSearch(k_min=2), ttl_nf, queries=60, rng=SEED
        )
        rw = normalized_walk_curve(graph, ttl_nf, k_min=2, queries=60, rng=SEED)
        print(f"-- PA {name}")
        print(f"   FL hits @tau={ttl_fl}: {[round(h) for h in fl.mean_hits]}")
        print(f"   NF hits @tau={ttl_nf}: {[round(h, 1) for h in nf.mean_hits]}")
        print(f"   RW hits @tau={ttl_nf}: {[round(h, 1) for h in rw.mean_hits]}")

    print(
        "\nNote how the hard cutoff barely hurts flooding at m=2 and actually helps\n"
        "NF/RW — the paper's counter-intuitive headline result."
    )


if __name__ == "__main__":
    main()
