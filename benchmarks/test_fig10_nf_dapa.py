"""Benchmark / reproduction of paper Fig. 10 (normalized flooding on DAPA)."""

from __future__ import annotations

from benchmarks.conftest import keeps_up, run_figure_benchmark


def test_fig10_normalized_flooding_on_dapa(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig10", scale)

    # Group by (m, tau_sub) and compare cutoffs: the kc=10 series should be
    # at least comparable to the no-cutoff series (paper: "as the hard cutoff
    # is getting smaller, the search efficiency improves").
    groups = {}
    for series in result.series:
        key = (series.metadata["stubs"], series.metadata["tau_sub"])
        groups.setdefault(key, {})[series.metadata["hard_cutoff"]] = series

    wins = 0
    comparisons = 0
    for cutoffs in groups.values():
        if 10 in cutoffs and None in cutoffs:
            comparisons += 1
            if keeps_up(cutoffs[10].final(), cutoffs[None].final()):
                wins += 1
    assert comparisons > 0
    assert wins >= 0.6 * comparisons

    # Better connectedness improves hits greatly (m=3 vs m=1), when both are present.
    m1 = [s.final() for s in result.series if s.metadata["stubs"] == 1]
    m3 = [s.final() for s in result.series if s.metadata["stubs"] == 3]
    if m1 and m3:
        assert max(m3) > 5 * max(m1)
