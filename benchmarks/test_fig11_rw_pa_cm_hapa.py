"""Benchmark / reproduction of paper Fig. 11 (random walk on PA, CM, HAPA)."""

from __future__ import annotations

from benchmarks.conftest import keeps_up, run_figure_benchmark


def test_fig11_random_walk(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig11", scale)

    by_model_and_stubs = {}
    for series in result.series:
        key = (series.metadata["model"], series.metadata["stubs"])
        by_model_and_stubs.setdefault(key, {})[series.metadata["hard_cutoff"]] = series

    # On PA and HAPA the small-cutoff series keeps up with (or beats) the
    # no-cutoff series at equal NF message budget.
    checked = 0
    for (model, stubs), cutoffs in by_model_and_stubs.items():
        if model not in ("pa", "hapa"):
            continue
        if 10 in cutoffs and None in cutoffs:
            checked += 1
            assert keeps_up(
                cutoffs[10].final(), cutoffs[None].final(), rel=0.85
            ), (model, stubs)
    assert checked >= 2

    # RW hits grow with the message budget (monotone curves).
    for series in result.series:
        assert all(b >= a - 1e-9 for a, b in zip(series.y, series.y[1:])), series.label
