"""Benchmark / reproduction of paper Fig. 1 (PA degree distributions)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_fig1_pa_degree_distributions(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig1", scale)

    # Panel (b): cutoff series accumulate probability at k = kc.
    cutoff_series = [
        series for series in result.series
        if series.label.startswith("P(k)") and series.metadata.get("hard_cutoff") == 10
    ]
    assert cutoff_series
    for series in cutoff_series:
        assert max(series.x) <= 10
        probability_at_cutoff = series.y[series.x.index(max(series.x))]
        assert probability_at_cutoff > 0

    # Panel (c): the fitted exponent increases with the cutoff for every m.
    for label in result.labels():
        if label.startswith("gamma vs kc"):
            series = result.get(label)
            assert series.y[0] <= series.y[-1] + 0.35, label
