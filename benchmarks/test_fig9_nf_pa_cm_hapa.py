"""Benchmark / reproduction of paper Fig. 9 (normalized flooding on PA, CM, HAPA)."""

from __future__ import annotations

from benchmarks.conftest import keeps_up, run_figure_benchmark


def _best_final(series_list):
    return max(series.final() for series in series_list)


def test_fig9_normalized_flooding(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig9", scale)

    by_model_and_stubs = {}
    for series in result.series:
        key = (series.metadata["model"], series.metadata["stubs"])
        by_model_and_stubs.setdefault(key, {})[series.metadata["hard_cutoff"]] = series

    # The paper's headline: on PA and HAPA, the smallest cutoff's hit count is
    # at least comparable to (>= 90% of) the no-cutoff hit count, i.e. hard
    # cutoffs do not hurt NF and usually help.
    checked = 0
    for (model, stubs), cutoffs in by_model_and_stubs.items():
        if model not in ("pa", "hapa"):
            continue
        if 10 in cutoffs and None in cutoffs:
            checked += 1
            assert keeps_up(
                cutoffs[10].final(), cutoffs[None].final(), rel=0.9
            ), (model, stubs)
    assert checked >= 2

    # Connectedness dominates: for every model, m=2 or 3 reaches at least an
    # order of magnitude more peers than m=1.
    for model in {model for model, _ in by_model_and_stubs}:
        m1 = [
            series.final()
            for (mdl, stubs), cutoffs in by_model_and_stubs.items()
            for series in cutoffs.values()
            if mdl == model and stubs == 1
        ]
        m_high = [
            series.final()
            for (mdl, stubs), cutoffs in by_model_and_stubs.items()
            for series in cutoffs.values()
            if mdl == model and stubs >= 2
        ]
        if m1 and m_high:
            assert max(m_high) > 5 * max(m1), model
