"""Benchmark / reproduction of paper Fig. 3 (HAPA degree distributions)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_fig3_hapa_degree_distributions(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig3", scale)

    no_cutoff_labels = [label for label in result.labels() if "no kc" in label]
    cutoff_labels = [label for label in result.labels() if "kc=10" in label]
    assert no_cutoff_labels and cutoff_labels

    # Without a cutoff HAPA builds super hubs with degree on the order of the
    # network size (star-like topology).
    super_hub_degrees = [result.get(label).metadata["max_degree"] for label in no_cutoff_labels]
    assert max(super_hub_degrees) > 0.3 * scale.nodes or max(super_hub_degrees) > 500

    # A hard cutoff destroys the star: the maximum degree equals the cutoff.
    for label in cutoff_labels:
        assert result.get(label).metadata["max_degree"] <= 10
