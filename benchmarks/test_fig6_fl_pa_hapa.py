"""Benchmark / reproduction of paper Fig. 6 (flooding on PA and HAPA)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def _series_by(result, model: str, stubs: int):
    return {
        series.metadata["hard_cutoff"]: series
        for series in result.series
        if series.metadata["model"] == model and series.metadata["stubs"] == stubs
    }


def test_fig6_flooding_on_pa_and_hapa(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig6", scale)
    reference_ttl = min(5, scale.flooding_max_ttl)

    for model in ("pa", "hapa"):
        # m=1: no cutoff dominates the hardest cutoff at the reference TTL.
        low_m = _series_by(result, model, 1)
        if None in low_m and 10 in low_m:
            assert low_m[None].y_at(reference_ttl) >= low_m[10].y_at(reference_ttl), model

    # The penalty ratio shrinks as m grows (the paper's m=3 guideline).
    available_stubs = sorted(
        {series.metadata["stubs"] for series in result.series if series.metadata["model"] == "pa"}
    )
    ratios = []
    for stubs in available_stubs:
        series_map = _series_by(result, "pa", stubs)
        if None in series_map and 10 in series_map:
            unbounded = series_map[None].y_at(reference_ttl)
            bounded = max(series_map[10].y_at(reference_ttl), 1e-9)
            ratios.append(unbounded / bounded)
    assert len(ratios) >= 2
    assert ratios[-1] <= ratios[0] + 0.25  # higher m => smaller (or equal) penalty
