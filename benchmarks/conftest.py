"""Shared plumbing for the figure/table reproduction benchmarks.

Every benchmark module regenerates one paper artefact through
:mod:`repro.experiments` and

* times the full experiment once (``benchmark.pedantic`` with a single
  round — these are minutes-long simulations, not microbenchmarks),
* records a compact summary of the reproduced series in
  ``benchmark.extra_info`` so the numbers appear in the benchmark JSON/log,
* writes the full result as JSON under ``benchmarks/results/`` for
  side-by-side comparison with the paper (see EXPERIMENTS.md),
* asserts the qualitative trend the paper reports for that artefact.

The scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke``, ``small`` — default, or ``paper``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> ExperimentScale:
    """Return the experiment scale selected via REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    return ExperimentScale.from_name(name)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Session-wide experiment scale for all benchmarks."""
    return bench_scale()


def keeps_up(candidate: float, reference: float, rel: float = 0.85, abs_tol: float = 2.0) -> bool:
    """True when ``candidate`` is at least comparable to ``reference``.

    Search-hit comparisons at the reduced benchmark scales are noisy,
    especially in the m = 1 regime where NF/RW reach only a handful of peers;
    a curve "keeps up" with another if it reaches at least ``rel`` of its hits
    or is within ``abs_tol`` hits absolutely.
    """
    return candidate >= rel * reference or (reference - candidate) <= abs_tol


def run_figure_benchmark(benchmark, experiment_id: str, scale: ExperimentScale) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist its result."""
    result_holder = {}

    def _run():
        result_holder["result"] = run_experiment(experiment_id, scale=scale)
        return result_holder["result"]

    benchmark.pedantic(_run, rounds=1, iterations=1, warmup_rounds=0)
    result: ExperimentResult = result_holder["result"]

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    result.save_json(RESULTS_DIR / f"{experiment_id}.json")
    result.save_csv(RESULTS_DIR / f"{experiment_id}.csv")

    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["scale"] = scale.name
    benchmark.extra_info["series"] = {
        series.label: round(float(series.final()), 4) for series in result.series
    }
    return result
