"""Shared plumbing for the figure/table reproduction benchmarks.

Every benchmark module regenerates one paper artefact through
:mod:`repro.experiments` and

* times the full experiment once (``benchmark.pedantic`` with a single
  round — these are minutes-long simulations, not microbenchmarks),
* records a compact summary of the reproduced series in
  ``benchmark.extra_info`` so the numbers appear in the benchmark JSON/log,
* writes the full result as JSON under ``benchmarks/results/`` for
  side-by-side comparison with the paper (see EXPERIMENTS.md),
* asserts the qualitative trend the paper reports for that artefact.

The scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke``, ``small`` — default, or ``paper``), the worker-process count
for realization tasks with ``REPRO_JOBS`` (default 1 = serial; parallel runs
produce numerically identical results, see :mod:`repro.engine`), and the
graph backend with ``REPRO_BACKEND`` (``adj`` — default, or ``csr`` for the
frozen vectorized backend; results are byte-identical either way, see
``tests/test_backend_equivalence.py``), and the kernel tier for the
stochastic search loops with ``REPRO_KERNELS`` (``auto`` — default, or
``python`` / ``jit``; ``jit`` compiles the NF/PF/RW loops with numba,
results are byte-identical across tiers).

Every test collected from this directory is marked ``bench`` (registered in
``pytest.ini``), so ``pytest -m "not bench"`` skips the benchmark tier.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.backend import normalize_backend, normalize_kernels
from repro.engine.executor import Executor, executor_from_jobs
from repro.experiments.registry import run_experiment
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench``."""
    this_dir = Path(__file__).parent
    for item in items:
        try:
            in_benchmarks = Path(str(item.fspath)).is_relative_to(this_dir)
        except ValueError:  # pragma: no cover - foreign path layout
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.bench)


def bench_scale() -> ExperimentScale:
    """Return the experiment scale selected via REPRO_BENCH_SCALE."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    return ExperimentScale.from_name(name)


def bench_jobs() -> int:
    """Return the worker-process count selected via REPRO_JOBS."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def bench_backend() -> str:
    """Return the graph backend selected via REPRO_BACKEND."""
    return normalize_backend(os.environ.get("REPRO_BACKEND"))


def bench_kernels() -> str:
    """Return the kernel mode selected via REPRO_KERNELS."""
    return normalize_kernels(os.environ.get("REPRO_KERNELS"))


_SHARED_EXECUTOR: "Executor | None" = None


def shared_executor() -> Executor:
    """One executor for the whole benchmark session (honours REPRO_JOBS)."""
    global _SHARED_EXECUTOR
    if _SHARED_EXECUTOR is None:
        _SHARED_EXECUTOR = executor_from_jobs(bench_jobs())
    return _SHARED_EXECUTOR


@pytest.fixture(scope="session", autouse=True)
def _shutdown_executor():
    """Release the shared worker pool when the benchmark session ends."""
    yield
    if _SHARED_EXECUTOR is not None:
        _SHARED_EXECUTOR.close()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Session-wide experiment scale for all benchmarks."""
    return bench_scale()


def keeps_up(candidate: float, reference: float, rel: float = 0.85, abs_tol: float = 2.0) -> bool:
    """True when ``candidate`` is at least comparable to ``reference``.

    Search-hit comparisons at the reduced benchmark scales are noisy,
    especially in the m = 1 regime where NF/RW reach only a handful of peers;
    a curve "keeps up" with another if it reaches at least ``rel`` of its hits
    or is within ``abs_tol`` hits absolutely.
    """
    return candidate >= rel * reference or (reference - candidate) <= abs_tol


def run_figure_benchmark(benchmark, experiment_id: str, scale: ExperimentScale) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist its result."""
    result_holder = {}
    executor = shared_executor()

    def _run():
        result_holder["result"] = run_experiment(
            experiment_id,
            scale=scale,
            executor=executor,
            backend=bench_backend(),
            kernels=bench_kernels(),
        )
        return result_holder["result"]

    benchmark.pedantic(_run, rounds=1, iterations=1, warmup_rounds=0)
    result: ExperimentResult = result_holder["result"]

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    result.save_json(RESULTS_DIR / f"{experiment_id}.json")
    result.save_csv(RESULTS_DIR / f"{experiment_id}.csv")

    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["scale"] = scale.name
    benchmark.extra_info["jobs"] = executor.jobs
    benchmark.extra_info["backend"] = bench_backend()
    benchmark.extra_info["kernels"] = bench_kernels()
    benchmark.extra_info["series"] = {
        series.label: round(float(series.final()), 4) for series in result.series
    }
    return result
