"""Benchmark / reproduction of paper Fig. 7 (flooding on CM topologies)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_fig7_flooding_on_cm(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig7", scale)
    network_size = scale.search_nodes

    # m=1 CM graphs are disconnected: flooding saturates below the system
    # size even at the largest TTL simulated.
    m1_series = [series for series in result.series if series.metadata["stubs"] == 1]
    assert m1_series
    for series in m1_series:
        assert series.final() < 0.97 * network_size, series.label

    # For m>=2 the graph has a giant component covering almost everything, so
    # flooding approaches the system size.
    m_high_no_cutoff = [
        series
        for series in result.series
        if series.metadata["stubs"] >= 2 and series.metadata["hard_cutoff"] is None
    ]
    assert m_high_no_cutoff
    for series in m_high_no_cutoff:
        assert series.final() > 0.7 * network_size, series.label
