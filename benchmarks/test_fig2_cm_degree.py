"""Benchmark / reproduction of paper Fig. 2 (CM degree distributions)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_fig2_cm_degree_distributions(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig2", scale)

    # Every cutoff series is truncated at its cutoff.
    for label in result.labels():
        series = result.get(label)
        if "kc=10" in label:
            assert max(series.x) <= 10, label
        if "kc=40" in label:
            assert max(series.x) <= 40, label

    # The prescribed power law survives the cutoff: the mode of every
    # distribution sits at the prescribed minimum degree m (nodes below m are
    # rare self-loop/multi-edge deletion artifacts).
    for label in result.labels():
        series = result.get(label)
        stubs = series.metadata["stubs"]
        mode_degree = series.x[series.y.index(max(series.y))]
        assert mode_degree == stubs, label
