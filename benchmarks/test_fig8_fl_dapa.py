"""Benchmark / reproduction of paper Fig. 8 (flooding on DAPA topologies)."""

from __future__ import annotations

from benchmarks.conftest import keeps_up, run_figure_benchmark


def test_fig8_flooding_on_dapa(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig8", scale)
    reference_ttl = min(8, scale.flooding_max_ttl)

    # Larger locality horizons reach at least as many peers at the same TTL
    # (compare the smallest and largest tau_sub within each (m, kc) group).
    groups = {}
    for series in result.series:
        key = (series.metadata["stubs"], series.metadata["hard_cutoff"])
        groups.setdefault(key, []).append(series)
    assert groups
    improvements = 0
    comparisons = 0
    for series_list in groups.values():
        by_tau = sorted(series_list, key=lambda s: s.metadata["tau_sub"])
        if len(by_tau) < 2:
            continue
        comparisons += 1
        if keeps_up(
            by_tau[-1].y_at(reference_ttl), by_tau[0].y_at(reference_ttl), rel=0.9
        ):
            improvements += 1
    assert comparisons > 0
    assert improvements >= comparisons * 0.6

    # Connectedness interplay (m=1): the hard cutoff does not hurt flooding —
    # the kc=10 curve finishes at or above ~80% of the no-cutoff curve.
    m1_by_cutoff = {}
    for series in result.series:
        if series.metadata["stubs"] == 1:
            m1_by_cutoff.setdefault(series.metadata["hard_cutoff"], []).append(series)
    if None in m1_by_cutoff and 10 in m1_by_cutoff:
        best_bounded = max(series.final() for series in m1_by_cutoff[10])
        best_unbounded = max(series.final() for series in m1_by_cutoff[None])
        assert keeps_up(best_bounded, best_unbounded, rel=0.8)
