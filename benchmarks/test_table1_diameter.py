"""Benchmark / reproduction of paper Table I (diameter scaling classes)."""

from __future__ import annotations

import math

from benchmarks.conftest import run_figure_benchmark


def test_table1_diameter_scaling(benchmark, scale):
    result = run_figure_benchmark(benchmark, "table1", scale)

    ultra_small = result.get("cm gamma=2.5 m=2")
    dense_tree_free = result.get("pa gamma=3 m=2")
    tree = result.get("pa gamma=3 m=1 (tree)")
    steep = result.get("cm gamma=3.5 m=2")

    largest_n = ultra_small.x[-1]

    # Ordering at the largest common size: ultra-small <= gamma=3 (m>=2)
    # < tree, and gamma>3 behaves like a small-world (>= gamma=3 case).
    assert ultra_small.y_at(largest_n) <= dense_tree_free.y_at(largest_n) + 0.25
    assert tree.y_at(largest_n) > dense_tree_free.y_at(largest_n)
    assert steep.y_at(largest_n) >= ultra_small.y_at(largest_n) - 0.25

    # Every class grows slower than linearly: going from the smallest to the
    # largest N must inflate the path length far less than N itself inflates.
    for series in result.series:
        n_ratio = series.x[-1] / series.x[0]
        path_ratio = series.y[-1] / max(series.y[0], 1e-9)
        assert path_ratio < max(1.6, 0.75 * n_ratio), series.label
        # and no faster than ~logarithmically (generous constant).
        assert path_ratio < 3.0 * math.log(n_ratio) + 3.0, series.label
