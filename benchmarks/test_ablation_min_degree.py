"""Ablation benchmark: the paper's "minimum of 2-3 links" join guideline."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_ablation_min_degree(benchmark, scale):
    result = run_figure_benchmark(benchmark, "ablation_min_degree", scale)

    ratio = result.get("cutoff penalty ratio (no kc / kc=10)")
    # The flooding penalty of a kc=10 cutoff shrinks as m grows from 1 to 3.
    assert ratio.y[-1] <= ratio.y[0] + 0.2
    # And by the largest m it is a small factor (the paper calls it
    # "virtually no difference"; we allow up to 2x at the reduced scale).
    assert ratio.y[-1] < 2.5
