"""Micro-benchmarks of the core building blocks.

These are conventional pytest-benchmark timings (many rounds, statistical
output) of the operations the figure reproductions are built from: topology
construction for each model, and one query of each search algorithm.  They
exist so performance regressions in the substrate show up independently of
the minutes-long figure experiments, and they double as the ablation of the
PA implementation strategy called out in DESIGN.md (accept/reject vs
roulette selection).
"""

from __future__ import annotations

import pytest

from repro.generators.cm import generate_cm
from repro.generators.dapa import generate_dapa
from repro.generators.hapa import generate_hapa
from repro.generators.pa import generate_pa
from repro.search.flooding import flood
from repro.search.normalized_flooding import normalized_flood
from repro.search.random_walk import random_walk

NODES = 2000


@pytest.fixture(scope="module")
def pa_topology():
    return generate_pa(NODES, stubs=2, hard_cutoff=20, seed=5)


class TestGeneratorBenchmarks:
    def test_pa_roulette_generation(self, benchmark):
        graph = benchmark(generate_pa, NODES, stubs=2, hard_cutoff=20, seed=1)
        assert graph.number_of_nodes == NODES

    def test_pa_attempt_generation(self, benchmark):
        graph = benchmark(
            generate_pa, 500, stubs=2, hard_cutoff=20, seed=1, strategy="attempt"
        )
        assert graph.number_of_nodes == 500

    def test_cm_generation(self, benchmark):
        graph = benchmark(
            generate_cm, NODES, exponent=2.5, min_degree=2, hard_cutoff=30, seed=1
        )
        assert graph.number_of_nodes == NODES

    def test_hapa_generation(self, benchmark):
        graph = benchmark(generate_hapa, 800, stubs=1, hard_cutoff=20, seed=1)
        assert graph.number_of_nodes == 800

    def test_dapa_generation(self, benchmark):
        graph = benchmark(
            generate_dapa, 600, stubs=2, hard_cutoff=10, local_ttl=4, seed=1
        )
        assert graph.number_of_nodes <= 600


class TestSearchBenchmarks:
    def test_flooding_query(self, benchmark, pa_topology):
        result = benchmark(flood, pa_topology, 0, 6)
        assert result.hits > 0

    def test_normalized_flooding_query(self, benchmark, pa_topology):
        result = benchmark(normalized_flood, pa_topology, 0, 8, 2, 7)
        assert result.hits > 0

    def test_random_walk_query(self, benchmark, pa_topology):
        result = benchmark(random_walk, pa_topology, 0, 200, 1, 7)
        assert result.hits > 0
