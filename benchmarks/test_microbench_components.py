"""Micro-benchmarks of the core building blocks.

These are conventional pytest-benchmark timings (many rounds, statistical
output) of the operations the figure reproductions are built from: topology
construction for each model, and one query of each search algorithm.  They
exist so performance regressions in the substrate show up independently of
the minutes-long figure experiments, and they double as the ablation of the
PA implementation strategy called out in DESIGN.md (accept/reject vs
roulette selection).

``TestBackendBenchmarks`` compares the two graph backends head to head on a
fig9-scale topology and *asserts* the flooding speedup the CSR backend
exists to deliver, so backend performance drift fails the suite instead of
passing silently.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.csr import batch_random_walks
from repro.generators.cm import generate_cm
from repro.generators.dapa import generate_dapa
from repro.generators.hapa import generate_hapa
from repro.generators.pa import generate_pa
from repro.search.flooding import FloodingSearch, flood
from repro.search.metrics import search_curve
from repro.search.normalized_flooding import normalized_flood
from repro.search.random_walk import random_walk

NODES = 2000

# The fig9 search topology at the "small" preset: 1500-node PA overlay.
FIG9_NODES = 1500
FIG9_TTL = 15


@pytest.fixture(scope="module")
def pa_topology():
    return generate_pa(NODES, stubs=2, hard_cutoff=20, seed=5)


class TestGeneratorBenchmarks:
    def test_pa_roulette_generation(self, benchmark):
        graph = benchmark(generate_pa, NODES, stubs=2, hard_cutoff=20, seed=1)
        assert graph.number_of_nodes == NODES

    def test_pa_attempt_generation(self, benchmark):
        graph = benchmark(
            generate_pa, 500, stubs=2, hard_cutoff=20, seed=1, strategy="attempt"
        )
        assert graph.number_of_nodes == 500

    def test_cm_generation(self, benchmark):
        graph = benchmark(
            generate_cm, NODES, exponent=2.5, min_degree=2, hard_cutoff=30, seed=1
        )
        assert graph.number_of_nodes == NODES

    def test_hapa_generation(self, benchmark):
        graph = benchmark(generate_hapa, 800, stubs=1, hard_cutoff=20, seed=1)
        assert graph.number_of_nodes == 800

    def test_dapa_generation(self, benchmark):
        graph = benchmark(
            generate_dapa, 600, stubs=2, hard_cutoff=10, local_ttl=4, seed=1
        )
        assert graph.number_of_nodes <= 600


class TestSearchBenchmarks:
    def test_flooding_query(self, benchmark, pa_topology):
        result = benchmark(flood, pa_topology, 0, 6)
        assert result.hits > 0

    def test_normalized_flooding_query(self, benchmark, pa_topology):
        result = benchmark(normalized_flood, pa_topology, 0, 8, 2, 7)
        assert result.hits > 0

    def test_random_walk_query(self, benchmark, pa_topology):
        result = benchmark(random_walk, pa_topology, 0, 200, 1, 7)
        assert result.hits > 0


@pytest.fixture(scope="module")
def fig9_topology():
    """One fig9-scale PA search overlay, shared by the backend comparisons."""
    return generate_pa(FIG9_NODES, stubs=2, hard_cutoff=10, seed=9)


@pytest.fixture(scope="module")
def fig9_frozen(fig9_topology):
    return fig9_topology.freeze()


def _best_of(runs: int, fn) -> float:
    """Minimum wall-clock of ``runs`` calls (robust against scheduler noise)."""
    timings = []
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


class TestBackendBenchmarks:
    """adj vs. csr on the fig9-scale topology (identical results, see
    tests/test_backend_equivalence.py — these tests time them)."""

    QUERIES = 60

    def _flooding_curve(self, graph):
        return search_curve(
            graph,
            FloodingSearch(),
            list(range(1, FIG9_TTL + 1)),
            queries=self.QUERIES,
            rng=5,
        )

    def test_flooding_curve_adj(self, benchmark, fig9_topology):
        curve = benchmark(self._flooding_curve, fig9_topology)
        assert curve.final_hits() > 0

    def test_flooding_curve_csr(self, benchmark, fig9_frozen):
        curve = benchmark(self._flooding_curve, fig9_frozen)
        assert curve.final_hits() > 0

    def test_flooding_speedup_at_least_3x(self, fig9_topology, fig9_frozen):
        """The acceptance bar of the CSR backend: >= 3x on flooding.

        Measured as best-of-N batches of whole flooding curves (the unit of
        work every FL figure runs per realization); best-of minimizes
        scheduler noise, and the observed ratio (~8-10x with SciPy, ~2.5x
        with the NumPy fallback) leaves a wide margin over the bar.
        """
        adj_curve = self._flooding_curve(fig9_topology)
        csr_curve = self._flooding_curve(fig9_frozen)
        assert adj_curve.as_dict() == csr_curve.as_dict()

        adj_seconds = _best_of(5, lambda: self._flooding_curve(fig9_topology))
        csr_seconds = _best_of(5, lambda: self._flooding_curve(fig9_frozen))
        speedup = adj_seconds / csr_seconds
        try:
            import scipy  # noqa: F401

            floor = 3.0
        except ImportError:  # pragma: no cover - scipy-less installs
            floor = 1.2  # the per-source NumPy kernel is a smaller win
        assert speedup >= floor, (
            f"CSR flooding speedup regressed: {speedup:.2f}x "
            f"(adj {adj_seconds * 1e3:.1f} ms, csr {csr_seconds * 1e3:.1f} ms)"
        )

    def test_single_query_flood_csr(self, benchmark, fig9_frozen):
        result = benchmark(flood, fig9_frozen, 0, FIG9_TTL)
        assert result.hits > 0

    def test_batch_random_walks_kernel(self, benchmark, fig9_frozen):
        rng = np.random.default_rng(11)
        sources = np.arange(self.QUERIES)

        trajectory = benchmark(
            batch_random_walks, fig9_frozen, sources, 200, rng
        )
        assert trajectory.shape == (201, self.QUERIES)


class TestKernelTierBenchmarks:
    """python vs. jit kernel tier on fig11-scale stochastic curves.

    The jit tier exists to deliver an integer multiple on the NF/PF/RW
    loops the CSR backend could not vectorize (RNG-stream parity pins them
    to sequential draws); these tests assert its >= 3x floor so a kernel
    or dispatch regression fails the suite instead of passing silently.
    Skipped (not failed) when numba is absent: the interpreted fallback is
    correctness-equivalent but intentionally unoptimized.
    """

    QUERIES = 60
    NF_TTLS = list(range(2, 11, 2))
    RW_TTLS = list(range(2, 11, 2))

    @pytest.fixture(autouse=True)
    def _require_compiled_kernels(self):
        from repro.kernels import kernel_tier

        if kernel_tier() != "jit":
            pytest.skip("numba not installed: jit kernel tier unavailable")

    def _nf_curve(self, graph, mode):
        from repro.kernels import use_kernels
        from repro.search.metrics import search_curve
        from repro.search.normalized_flooding import NormalizedFloodingSearch

        with use_kernels(mode):
            return search_curve(
                graph,
                NormalizedFloodingSearch(k_min=2),
                self.NF_TTLS,
                queries=self.QUERIES,
                rng=5,
            )

    def _rw_curve(self, graph, mode):
        from repro.kernels import use_kernels
        from repro.search.metrics import normalized_walk_curve

        with use_kernels(mode):
            return normalized_walk_curve(
                graph, self.RW_TTLS, k_min=2, queries=self.QUERIES, rng=7
            )

    def test_nf_jit_speedup_at_least_3x(self, fig9_frozen):
        # Warm-up (and correctness gate): jit must equal python exactly.
        python_curve = self._nf_curve(fig9_frozen, "python")
        jit_curve = self._nf_curve(fig9_frozen, "jit")
        assert python_curve.as_dict() == jit_curve.as_dict()

        python_seconds = _best_of(3, lambda: self._nf_curve(fig9_frozen, "python"))
        jit_seconds = _best_of(3, lambda: self._nf_curve(fig9_frozen, "jit"))
        speedup = python_seconds / jit_seconds
        assert speedup >= 3.0, (
            f"jit NF speedup regressed: {speedup:.2f}x "
            f"(python {python_seconds * 1e3:.1f} ms, jit {jit_seconds * 1e3:.1f} ms)"
        )

    def test_rw_jit_speedup_at_least_3x(self, fig9_frozen):
        python_curve = self._rw_curve(fig9_frozen, "python")
        jit_curve = self._rw_curve(fig9_frozen, "jit")
        assert python_curve.as_dict() == jit_curve.as_dict()

        python_seconds = _best_of(3, lambda: self._rw_curve(fig9_frozen, "python"))
        jit_seconds = _best_of(3, lambda: self._rw_curve(fig9_frozen, "jit"))
        speedup = python_seconds / jit_seconds
        assert speedup >= 3.0, (
            f"jit RW speedup regressed: {speedup:.2f}x "
            f"(python {python_seconds * 1e3:.1f} ms, jit {jit_seconds * 1e3:.1f} ms)"
        )


class TestGeneratorKernelBenchmarks:
    """python vs. jit kernel tier on fig1-scale topology construction.

    PR 4 made the search loops an integer multiple faster, which left
    *generation* as the dominant per-realization cost at paper scale; the
    generator kernels exist to close that gap.  As with the search floors,
    the bar is >= 3x on the PA roulette build (the paper's Fig. 1
    workhorse), asserted so a kernel or dispatch regression fails the
    suite instead of passing silently.  Skipped without numba: the
    interpreted fallback is correctness-equivalent but intentionally
    unoptimized.
    """

    # Fig. 1 builds 10^5-node PA topologies; 2 * 10^4 keeps the python
    # reference timing CI-friendly while staying generation-dominated.
    FIG1_NODES = 20_000
    STUBS = 2
    CUTOFF = 100

    @pytest.fixture(autouse=True)
    def _require_compiled_kernels(self):
        from repro.kernels import kernel_tier

        if kernel_tier() != "jit":
            pytest.skip("numba not installed: jit kernel tier unavailable")

    def _build(self, mode, seed=7):
        from repro.kernels import use_kernels

        with use_kernels(mode):
            return generate_pa(
                self.FIG1_NODES, stubs=self.STUBS, hard_cutoff=self.CUTOFF,
                seed=seed,
            )

    def test_pa_generation_jit_speedup_at_least_3x(self):
        # Warm-up (and correctness gate): jit must equal python exactly.
        python_graph = self._build("python")
        jit_graph = self._build("jit")
        assert python_graph == jit_graph

        python_seconds = _best_of(3, lambda: self._build("python"))
        jit_seconds = _best_of(3, lambda: self._build("jit"))
        speedup = python_seconds / jit_seconds
        assert speedup >= 3.0, (
            f"jit PA generation speedup regressed: {speedup:.2f}x "
            f"(python {python_seconds * 1e3:.1f} ms, "
            f"jit {jit_seconds * 1e3:.1f} ms)"
        )

    def test_attempt_pa_generation_jit_speedup_at_least_3x(self):
        # The paper-literal attempt strategy is rejection-heavy (two draws
        # per attempt), which makes its Python loop the slowest build per
        # node of all the families — and the kernel win correspondingly
        # large.  Same >= 3x bar as the roulette build.
        from repro.kernels import use_kernels

        def build(mode):
            with use_kernels(mode):
                return generate_pa(
                    4_000, stubs=self.STUBS, hard_cutoff=self.CUTOFF,
                    seed=7, strategy="attempt",
                )

        python_graph = build("python")
        jit_graph = build("jit")
        assert python_graph == jit_graph

        python_seconds = _best_of(3, lambda: build("python"))
        jit_seconds = _best_of(3, lambda: build("jit"))
        speedup = python_seconds / jit_seconds
        assert speedup >= 3.0, (
            f"jit attempt-PA generation speedup regressed: {speedup:.2f}x "
            f"(python {python_seconds * 1e3:.1f} ms, "
            f"jit {jit_seconds * 1e3:.1f} ms)"
        )

    def test_grn_substrate_build_jit_speedup_at_least_3x(self):
        # The substrate build a jit DAPA realization runs before its
        # overlay can grow: the array path must beat the dict-based cell
        # sweep by the same >= 3x the other kernels deliver.
        from repro.kernels import use_kernels
        from repro.substrate.grn import generate_grn

        def build(mode, seed=7):
            with use_kernels(mode):
                return generate_grn(
                    20_000, target_mean_degree=10.0, torus=True, seed=seed
                )

        python_graph = build("python")
        jit_graph = build("jit")
        assert python_graph == jit_graph

        python_seconds = _best_of(3, lambda: build("python"))
        jit_seconds = _best_of(3, lambda: build("jit"))
        speedup = python_seconds / jit_seconds
        assert speedup >= 3.0, (
            f"jit GRN substrate build speedup regressed: {speedup:.2f}x "
            f"(python {python_seconds * 1e3:.1f} ms, "
            f"jit {jit_seconds * 1e3:.1f} ms)"
        )

    def test_cm_generation_jit_matches_and_does_not_regress(self):
        from repro.kernels import use_kernels

        def build(mode):
            with use_kernels(mode):
                return generate_cm(
                    self.FIG1_NODES, exponent=2.5, min_degree=2,
                    hard_cutoff=100, seed=7,
                )

        python_graph = build("python")
        jit_graph = build("jit")
        assert python_graph == jit_graph
        # CM is shuffle-bound, so the jit win is smaller than the growth
        # models'; the guard is a generous regression canary (not a floor)
        # to stay robust against noisy shared CI runners.
        python_seconds = _best_of(3, lambda: build("python"))
        jit_seconds = _best_of(3, lambda: build("jit"))
        assert jit_seconds <= python_seconds * 2.0, (
            f"jit CM generation regressed badly vs python: "
            f"{python_seconds * 1e3:.1f} ms -> {jit_seconds * 1e3:.1f} ms"
        )
