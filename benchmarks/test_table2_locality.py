"""Benchmark / reproduction of paper Table II (global-information usage)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark

EXPECTED_SCORES = {"pa": 2, "cm": 2, "hapa": 1, "dapa": 0}


def test_table2_global_information_usage(benchmark, scale):
    result = run_figure_benchmark(benchmark, "table2", scale)
    for model, expected_score in EXPECTED_SCORES.items():
        series = result.get(model)
        assert series.y == [expected_score], model
        assert series.metadata["matches_paper"] is True, model
