"""Benchmark / reproduction of the paper's §V-B-2 messaging-complexity study."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_messaging_complexity(benchmark, scale):
    result = run_figure_benchmark(benchmark, "messaging", scale)

    # Hard cutoffs cost little extra messaging: at the final tau the NF
    # message count of the kc=10 series stays within 1.6x of the no-cutoff
    # series for the same m.
    nf_messages = {}
    for series in result.series:
        if series.label.startswith("nf messages"):
            key = series.metadata["stubs"]
            nf_messages.setdefault(key, {})[series.metadata["hard_cutoff"]] = series
    assert nf_messages
    for stubs, by_cutoff in nf_messages.items():
        if 10 in by_cutoff and None in by_cutoff:
            assert by_cutoff[10].final() <= 1.6 * by_cutoff[None].final() + 10, stubs

    # NF is at least as message-efficient as RW: hits per message at the
    # final tau (RW is evaluated at the same NF message budget, so comparing
    # raw hits is the comparison).
    nf_hits = {
        (s.metadata["stubs"], s.metadata["hard_cutoff"]): s
        for s in result.series
        if s.label.startswith("nf hits")
    }
    rw_hits = {
        (s.metadata["stubs"], s.metadata["hard_cutoff"]): s
        for s in result.series
        if s.label.startswith("rw hits")
    }
    compared = 0
    nf_wins = 0
    for key, nf_series in nf_hits.items():
        if key in rw_hits:
            compared += 1
            if nf_series.final() >= 0.9 * rw_hits[key].final():
                nf_wins += 1
    assert compared > 0
    assert nf_wins >= 0.6 * compared
