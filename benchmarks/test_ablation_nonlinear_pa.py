"""Ablation benchmark: the attachment-kernel exponent α (extension).

The paper points to nonlinear preferential attachment as one of the
"modified PA models" that change the degree-distribution exponent without a
hard cutoff.  This ablation compares the three α regimes at a fixed size and
checks the known qualitative picture: sub-linear kernels suppress hubs,
linear kernels give the scale-free natural cutoff, super-linear kernels
condense — and a hard cutoff equalises all three.
"""

from __future__ import annotations

import pytest

from repro.analysis.cutoff import empirical_cutoff
from repro.generators.nonlinear_pa import generate_nonlinear_pa

NODES = 1500
SEED = 31


@pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5])
def test_nonlinear_pa_generation_speed(benchmark, alpha):
    graph = benchmark.pedantic(
        generate_nonlinear_pa,
        args=(NODES,),
        kwargs={"stubs": 2, "exponent_alpha": alpha, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["alpha"] = alpha
    benchmark.extra_info["max_degree"] = graph.max_degree()
    assert graph.number_of_nodes == NODES


def test_nonlinear_pa_hub_ordering(benchmark):
    def run():
        return {
            alpha: empirical_cutoff(
                generate_nonlinear_pa(NODES, stubs=1, exponent_alpha=alpha, seed=SEED)
            )
            for alpha in (0.5, 1.0, 1.5)
        }

    hubs = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["max_degree_by_alpha"] = hubs
    # Sub-linear < linear < super-linear hub sizes.
    assert hubs[0.5] < hubs[1.0] < hubs[1.5]

    # A hard cutoff erases the difference entirely.
    capped = {
        alpha: empirical_cutoff(
            generate_nonlinear_pa(
                NODES, stubs=1, exponent_alpha=alpha, hard_cutoff=10, seed=SEED
            )
        )
        for alpha in (0.5, 1.0, 1.5)
    }
    assert all(value <= 10 for value in capped.values())
