"""Benchmark / reproduction of paper Fig. 12 (random walk on DAPA)."""

from __future__ import annotations

from benchmarks.conftest import keeps_up, run_figure_benchmark


def test_fig12_random_walk_on_dapa(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig12", scale)

    groups = {}
    for series in result.series:
        key = (series.metadata["stubs"], series.metadata["tau_sub"])
        groups.setdefault(key, {})[series.metadata["hard_cutoff"]] = series

    wins = 0
    comparisons = 0
    for cutoffs in groups.values():
        if 10 in cutoffs and None in cutoffs:
            comparisons += 1
            if keeps_up(cutoffs[10].final(), cutoffs[None].final(), rel=0.8):
                wins += 1
    assert comparisons > 0
    assert wins >= 0.6 * comparisons

    m1 = [s.final() for s in result.series if s.metadata["stubs"] == 1]
    m3 = [s.final() for s in result.series if s.metadata["stubs"] == 3]
    if m1 and m3:
        assert max(m3) > 5 * max(m1)
