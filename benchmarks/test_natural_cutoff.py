"""Benchmark / reproduction of the natural-cutoff scaling (paper Eqs. 2, 4, 5)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_natural_cutoff_scaling(benchmark, scale):
    result = run_figure_benchmark(benchmark, "natural_cutoff", scale)

    measured_labels = [label for label in result.labels() if label.startswith("measured")]
    assert measured_labels
    for label in measured_labels:
        measured = result.get(label)
        stubs = measured.metadata["stubs"]
        dorogovtsev = result.get(f"dorogovtsev m={stubs} (m*sqrt(N))")
        aiello = result.get(f"aiello m={stubs} (N^(1/3))")

        # The empirical maximum degree grows with N ...
        assert measured.y[-1] > measured.y[0]
        # ... roughly like the Dorogovtsev sqrt(N) estimate (within a factor
        # of ~3 at the largest size) ...
        ratio = measured.y[-1] / dorogovtsev.y[-1]
        assert 1 / 3 < ratio < 3.0, label
        # ... and clearly above the much smaller Aiello N^(1/3) estimate.
        assert measured.y[-1] > aiello.y[-1], label
