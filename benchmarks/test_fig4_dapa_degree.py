"""Benchmark / reproduction of paper Fig. 4 (DAPA degree distributions)."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_fig4_dapa_degree_distributions(benchmark, scale):
    result = run_figure_benchmark(benchmark, "fig4", scale)

    # Group the P(k) series by (m, cutoff): within a group, the largest
    # tau_sub should produce a tail at least as heavy as the smallest.
    groups = {}
    for label in result.labels():
        if not label.startswith("P(k)"):
            continue
        series = result.get(label)
        key = (series.metadata["stubs"], series.metadata["hard_cutoff"])
        groups.setdefault(key, []).append(series)

    assert groups
    for (stubs, cutoff), series_list in groups.items():
        by_tau = sorted(series_list, key=lambda s: s.metadata["tau_sub"])
        shortsighted, farsighted = by_tau[0], by_tau[-1]
        if cutoff is None:
            assert (
                farsighted.metadata["max_degree"]
                >= shortsighted.metadata["max_degree"]
            ), (stubs, cutoff)
        else:
            # With a hard cutoff all series are bounded by it.
            assert farsighted.metadata["max_degree"] <= cutoff

    # Panel (g): fitted exponents stay in a plausible scale-free range.
    for label in result.labels():
        if label.startswith("gamma vs kc"):
            assert all(1.2 < value < 4.5 for value in result.get(label).y), label
