"""Ablation benchmark: hard cutoffs and the robust-yet-fragile property."""

from __future__ import annotations

from benchmarks.conftest import run_figure_benchmark


def test_ablation_robustness(benchmark, scale):
    result = run_figure_benchmark(benchmark, "ablation_robustness", scale)

    failure_free = result.get("failure, no kc")
    attack_free = result.get("attack, no kc")
    failure_capped = result.get("failure, kc=10")
    attack_capped = result.get("attack, kc=10")

    # Scale-free without cutoff: attacks shatter the network faster than
    # random failures (robust yet fragile).
    assert attack_free.final() <= failure_free.final() + 0.02

    # With a hard cutoff there are no super hubs, so the attack/failure gap
    # narrows (or at least does not widen).
    gap_free = failure_free.final() - attack_free.final()
    gap_capped = failure_capped.final() - attack_capped.final()
    assert gap_capped <= gap_free + 0.1
